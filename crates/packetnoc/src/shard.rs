//! Region-sharded execution for the packet baseline.
//!
//! Same scheme as `patronoc`'s shard module — contiguous row bands stepped
//! by one worker each behind a per-cycle barrier, bit-identical to the
//! serial sweep — but the wormhole mesh needs much less machinery:
//!
//! * Every input flit buffer has exactly **one pusher** (the upstream
//!   router, or the node's own NI for the local port) and **one popper**
//!   (the owning router). A buffer whose pusher sits in another region
//!   therefore only needs a *push-only* mirror: a credit count copied from
//!   the fresh cycle snapshot plus the flits staged against it. The owner
//!   keeps popping the real buffer; the foreign pusher spends mirror
//!   credit; the staged flits replay at the serial commit.
//! * All delivery bookkeeping (throughput meter, latency histogram,
//!   transaction retirement, completion callbacks) already funnels through
//!   one `on_delivery` path, so the parallel phase merely *collects*
//!   deliveries per region and the commit replays them in ascending region
//!   order — which, regions being ascending node bands, is exactly the
//!   serial sweep's ascending-router order.

use crate::router::{Delivery, Flit, Router, PORTS};
use simkit::region::{DisjointSlots, RegionMap};
use simkit::Fifo;
use std::ops::Range;

/// Sentinel for "this region holds no mirror of that buffer".
pub(crate) const NO_MIRROR: u32 = u32::MAX;

/// Push-only mirror of one boundary flit buffer, held by the *pusher's*
/// region: the cycle-snapshot credit plus the flits staged this cycle.
#[derive(Debug, Default)]
pub(crate) struct BufMirror {
    /// Pushes still admissible this cycle (`snap_free` at capture).
    free: usize,
    /// Flits pushed this cycle, awaiting commit.
    staged: Vec<Flit>,
}

impl BufMirror {
    /// Refreshes the credit from `buf`'s just-begun cycle snapshot.
    pub(crate) fn capture(&mut self, buf: &Fifo<Flit>) {
        debug_assert!(self.staged.is_empty(), "mirror recaptured uncommitted");
        self.free = buf.snap_free();
    }

    fn can_push(&self) -> bool {
        self.free > 0
    }

    fn push(&mut self, f: Flit) {
        assert!(self.free > 0, "push on full mirrored buffer");
        self.free -= 1;
        self.staged.push(f);
    }

    /// Replays the staged pushes onto the real buffer. The mirror granted
    /// at most `snap_free` pushes and the buffer has exactly one pusher
    /// per cycle (this mirror's region), so every replay must land.
    pub(crate) fn commit(&mut self, buf: &mut Fifo<Flit>) {
        for f in self.staged.drain(..) {
            assert!(buf.push(f).is_ok(), "mirror over-granted a push");
        }
    }
}

/// Everything one region's worker needs for its slice of the cycle.
#[derive(Debug)]
pub(crate) struct RegionCtx {
    /// The region's node range (router index == NI index == node).
    pub(crate) nodes: Range<usize>,
    /// The region's buffers *except* boundary ones (those are begun and
    /// mirror-captured in the serial pre-phase), ascending.
    pub(crate) interior_bufs: Vec<usize>,
    /// Per global buffer: index into `mirrors`, or [`NO_MIRROR`].
    pub(crate) mirror_of: Vec<u32>,
    /// This region's push mirrors of foreign boundary buffers.
    pub(crate) mirrors: Vec<BufMirror>,
    /// Local-port deliveries collected this cycle, in ascending router
    /// order — replayed serially at commit.
    pub(crate) deliveries: Vec<Delivery>,
}

/// The full region partition of one baseline instance.
#[derive(Debug)]
pub(crate) struct Sharding {
    /// Boundary buffers as `(buffer, pusher_region)`, ascending by buffer
    /// index — the deterministic pre-phase/commit order.
    pub(crate) boundary: Vec<(usize, u32)>,
    /// One context per region, in region order.
    pub(crate) ctxs: Vec<RegionCtx>,
}

impl Sharding {
    /// Partitions a mesh into `map`'s row bands. `pusher(node, port)` names
    /// the node whose router pushes into the input buffer at
    /// `(node, port)` — the engine's neighbour function, since the
    /// upstream router in direction `p` feeds the port facing it.
    pub(crate) fn new(
        map: &RegionMap,
        vcs: usize,
        pusher: &dyn Fn(usize, usize) -> Option<usize>,
    ) -> Self {
        assert!(map.regions() > 1, "sharding needs at least two regions");
        let n = map.node_count();
        let bufs_per_node = PORTS * vcs;
        let num_bufs = n * bufs_per_node;
        let mut ctxs: Vec<RegionCtx> = (0..map.regions())
            .map(|r| RegionCtx {
                nodes: map.nodes(r),
                interior_bufs: Vec::new(),
                mirror_of: vec![NO_MIRROR; num_bufs],
                mirrors: Vec::new(),
                deliveries: Vec::new(),
            })
            .collect();
        let mut boundary = Vec::new();
        let mut is_boundary = vec![false; num_bufs];
        // Ascending (node, port, vc) ⇒ ascending buffer index: the
        // deterministic pre-phase/commit order.
        for node in 0..n {
            let owner = map.region_of(node);
            // LOCAL is fed by the node's own NI, never a foreign router.
            for p in 0..PORTS - 1 {
                let Some(up) = pusher(node, p) else { continue };
                let pr = map.region_of(up);
                if pr == owner {
                    continue;
                }
                let ctx = &mut ctxs[pr];
                for v in 0..vcs {
                    let b = Router::buf_index(node, p, v, vcs);
                    is_boundary[b] = true;
                    ctx.mirror_of[b] =
                        u32::try_from(ctx.mirrors.len()).expect("mirror count fits u32");
                    ctx.mirrors.push(BufMirror::default());
                    boundary.push((b, u32::try_from(pr).expect("region fits u32")));
                }
            }
        }
        for ctx in &mut ctxs {
            let start = ctx.nodes.start * bufs_per_node;
            let end = ctx.nodes.end * bufs_per_node;
            ctx.interior_bufs.extend(
                is_boundary[start..end]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &bd)| !bd)
                    .map(|(i, _)| start + i),
            );
        }
        Self { boundary, ctxs }
    }
}

/// One region's view of the flat buffer array during the parallel phase:
/// buffers of the region's own nodes resolve to the real [`Fifo`] (only
/// this worker touches them), foreign downstream buffers to the region's
/// push mirror. Peek/pop of a foreign buffer panics — a partitioning bug
/// fails loudly instead of racing.
pub(crate) struct ShardBufView<'a> {
    pub(crate) bufs: &'a DisjointSlots<'a, Fifo<Flit>>,
    /// node → region.
    pub(crate) node_region: &'a [u32],
    /// Buffers per node (`PORTS * vcs`): maps a buffer index to its node.
    pub(crate) bufs_per_node: usize,
    pub(crate) region: u32,
    pub(crate) mirror_of: &'a [u32],
    pub(crate) mirrors: &'a mut [BufMirror],
}

impl ShardBufView<'_> {
    fn is_mine(&self, idx: usize) -> bool {
        self.node_region[idx / self.bufs_per_node] == self.region
    }

    fn mirror_index(&self, idx: usize) -> usize {
        let m = self.mirror_of[idx];
        assert!(
            m != NO_MIRROR,
            "region {} touched buffer {idx} it neither owns nor pushes",
            self.region
        );
        m as usize
    }

    /// Whether `idx` accepts a push this cycle.
    pub(crate) fn can_push(&self, idx: usize) -> bool {
        if self.is_mine(idx) {
            // SAFETY: the buffer's node is in this region; only this
            // worker touches it.
            unsafe { self.bufs.get(idx) }.can_push()
        } else {
            self.mirrors[self.mirror_index(idx)].can_push()
        }
    }

    /// Pushes into `idx` (caller checked [`can_push`](Self::can_push)).
    pub(crate) fn push(&mut self, idx: usize, f: Flit) {
        if self.is_mine(idx) {
            // SAFETY: as `can_push`, plus `&mut self` for exclusivity.
            assert!(
                unsafe { self.bufs.get_mut(idx) }.push(f).is_ok(),
                "push on full buffer"
            );
        } else {
            let m = self.mirror_index(idx);
            self.mirrors[m].push(f);
        }
    }

    /// The flit poppable from `idx` this cycle (own buffers only).
    pub(crate) fn peek(&self, idx: usize) -> Option<Flit> {
        assert!(self.is_mine(idx), "peek on a foreign buffer");
        // SAFETY: owner check above; single worker per region.
        unsafe { self.bufs.get(idx) }.peek().copied()
    }

    /// Pops the flit at the consumer end of `idx` (own buffers only).
    pub(crate) fn pop(&mut self, idx: usize) -> Option<Flit> {
        assert!(self.is_mine(idx), "pop on a foreign buffer");
        // SAFETY: owner check above; `&mut self` for exclusivity.
        unsafe { self.bufs.get_mut(idx) }.pop()
    }
}

/// How a router touches the flat buffer array, abstracted so the same
/// `Router::step` code runs against the real buffers (serial engine:
/// `[Fifo<Flit>]`) or a region's `ShardBufView`. `peek` returns flits by
/// value ([`Flit`] is `Copy`) so no borrow outlives the call.
pub trait BufTable {
    /// The flit poppable from buffer `idx` this cycle, if any.
    fn peek(&self, idx: usize) -> Option<Flit>;
    /// Pops the flit at the consumer end of buffer `idx`.
    fn pop(&mut self, idx: usize) -> Option<Flit>;
    /// Whether buffer `idx` accepts a push this cycle.
    fn can_push(&self, idx: usize) -> bool;
    /// Pushes into buffer `idx` (caller checked
    /// [`can_push`](Self::can_push)).
    fn push(&mut self, idx: usize, f: Flit);
}

/// The serial engine's view: the plain buffer array itself.
impl BufTable for [Fifo<Flit>] {
    fn peek(&self, idx: usize) -> Option<Flit> {
        self[idx].peek().copied()
    }
    fn pop(&mut self, idx: usize) -> Option<Flit> {
        self[idx].pop()
    }
    fn can_push(&self, idx: usize) -> bool {
        self[idx].can_push()
    }
    fn push(&mut self, idx: usize, f: Flit) {
        assert!(self[idx].push(f).is_ok(), "push on full buffer");
    }
}

impl BufTable for ShardBufView<'_> {
    fn peek(&self, idx: usize) -> Option<Flit> {
        ShardBufView::peek(self, idx)
    }
    fn pop(&mut self, idx: usize) -> Option<Flit> {
        ShardBufView::pop(self, idx)
    }
    fn can_push(&self, idx: usize) -> bool {
        ShardBufView::can_push(self, idx)
    }
    fn push(&mut self, idx: usize, f: Flit) {
        ShardBufView::push(self, idx, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::FlitKind;
    use crate::txn::TxRecord;
    use simkit::Slab;
    use traffic::{Transfer, TransferKind};

    fn flit(arena: &mut Slab<TxRecord>) -> Flit {
        let tx = arena.alloc(TxRecord::new(
            0,
            Transfer {
                id: 1,
                dst: 1,
                offset: 0,
                bytes: 4,
                kind: TransferKind::Write,
            },
            1,
        ));
        Flit {
            kind: FlitKind::Head,
            src: 0,
            dst: 1,
            tx,
            payload: 4,
            injected_at: 0,
        }
    }

    #[test]
    fn mirror_credit_matches_the_snapshot_and_commit_replays() {
        let mut arena = Slab::new();
        let mut buf: Fifo<Flit> = Fifo::new(2);
        buf.begin_cycle();
        let mut m = BufMirror::default();
        m.capture(&buf);
        assert!(m.can_push());
        m.push(flit(&mut arena));
        m.push(flit(&mut arena));
        assert!(!m.can_push(), "depth-2 buffer grants exactly two pushes");
        m.commit(&mut buf);
        assert_eq!(buf.len(), 2);
        // The flits become poppable next cycle, like a direct push.
        assert!(buf.peek().is_none());
        buf.begin_cycle();
        assert!(buf.peek().is_some());
    }

    #[test]
    #[should_panic(expected = "neither owns nor pushes")]
    fn foreign_buffer_access_panics() {
        let mut bufs: Vec<Fifo<Flit>> = (0..2).map(|_| Fifo::new(2)).collect();
        let slots = DisjointSlots::new(&mut bufs);
        let view = ShardBufView {
            bufs: &slots,
            node_region: &[0, 1],
            bufs_per_node: 1,
            region: 0,
            mirror_of: &[NO_MIRROR; 2],
            mirrors: &mut [],
        };
        // Buffer 1 belongs to region 1 and region 0 holds no mirror of it.
        let _ = view.can_push(1);
    }
}
