//! The baseline NoC simulator.
//!
//! Drives a `cols × rows` mesh of wormhole routers and per-node NIs from a
//! [`TrafficSource`], measuring delivered payload exactly like the PATRONoC
//! engine so Fig. 4's curves are an apples-to-apples comparison. Like the
//! PATRONoC engine it steps activity-driven by default — only live flit
//! buffers, routers next to them, and busy NIs are touched each cycle —
//! with [`PacketNocConfig::full_sweep`] keeping the step-everything
//! reference path; the two are bit-identical.

use crate::config::PacketNocConfig;
use crate::ni::NetworkInterface;
use crate::router::{Flit, FlitKind, Port, Router, LOCAL, PORTS};
use crate::shard::{ShardBufView, Sharding};
use crate::snapcodec::{corrupt, decode_transfer, encode_transfer};
use crate::txn::{TxHandle, TxRecord};
use simkit::pool::{crew_scope, Crew};
use simkit::region::{DisjointSlots, RegionMap};
use simkit::sched::ActiveSet;
use simkit::slab::SlabStats;
use simkit::snap::{DecodeLimits, Decoder, Encoder, SnapError};
use simkit::{
    Cycle, Fifo, Histogram, Horizon, HorizonTracker, ProgressWatchdog, SimReport, Slab, StopReason,
    ThroughputMeter,
};

use traffic::TrafficSource;

/// Per-region slot → canonical record number map (see
/// [`PacketNocSim::canonical_txs`]).
type CanonMap = Vec<Vec<Option<u32>>>;

/// The packet-based baseline NoC simulator.
#[derive(Debug)]
pub struct PacketNocSim {
    cfg: PacketNocConfig,
    routers: Vec<Router>,
    bufs: Vec<Fifo<Flit>>,
    nis: Vec<NetworkInterface>,
    /// Arena of every in-flight transfer — one slab per region (a single
    /// slab when serial, preserving the historical allocation sequence):
    /// allocated at injection ([`poll_stimulus`](Self::poll_stimulus)) in
    /// the *source* node's region, its handle carried by every flit of the
    /// transfer, freed when the last tail delivers (the flit's `src` names
    /// the owning slab).
    txs: Vec<Slab<TxRecord>>,
    /// node → region owning its NI's transaction records (all zeros when
    /// serial).
    node_region: Vec<u32>,
    /// The region partition when `cfg.threads > 1` splits the mesh into
    /// more than one row band; `None` runs the classic serial sweeps.
    sharding: Option<Sharding>,
    now: Cycle,
    meter: ThroughputMeter,
    packets_delivered: u64,
    transfers_completed: u64,
    latency: Histogram,
    stop_reason: StopReason,
    /// Flit buffers to refresh this cycle (possibly non-quiescent).
    hot_bufs: ActiveSet,
    /// NIs to step this cycle (mid-packet, queued, or just fed).
    hot_nis: ActiveSet,
    /// Routers to step this cycle (an adjacent buffer is live).
    hot_routers: ActiveSet,
    scratch_bufs: Vec<usize>,
    scratch_nis: Vec<usize>,
    scratch_routers: Vec<usize>,
    /// Cumulative buffer refreshes + NI/router steps, counted identically
    /// in both stepping modes (the deterministic work measure).
    work_items: u64,
    /// Regime flag: while the tracked-work fraction crosses the shared
    /// [`simkit::sched::SATURATE_ENTER`] threshold, cycles run as plain
    /// full sweeps with no set maintenance (the bookkeeping cannot pay for
    /// itself); precise tracking resumes — after a one-off set rebuild —
    /// under [`simkit::sched::SATURATE_EXIT`]. Depends only on simulation
    /// state, so the regime sequence is deterministic.
    saturated: bool,
    /// Cycles stepped inside timed [`run`](Self::run) loops.
    wall_cycles: Cycle,
    /// Wall-clock seconds spent inside timed [`run`](Self::run) loops.
    wall_secs: f64,
    /// Cycles crossed by event-horizon time skipping ([`Self::try_skip`])
    /// instead of stepping. Cumulative telemetry like `wall_cycles`:
    /// excluded from snapshots and never reset on restore.
    cycles_skipped: u64,
}

impl PacketNocSim {
    /// Builds the mesh.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration
    /// (see [`PacketNocConfig::assert_valid`]).
    #[must_use]
    pub fn new(cfg: PacketNocConfig) -> Self {
        cfg.assert_valid();
        let n = cfg.num_nodes();
        let routers = (0..n).map(|i| Router::new(i, cfg.cols, cfg.vcs)).collect();
        let num_bufs = n * PORTS * cfg.vcs;
        let bufs = (0..num_bufs).map(|_| Fifo::new(cfg.buf_flits)).collect();
        let nis = (0..n).map(|i| NetworkInterface::new(i, &cfg)).collect();
        // Cycle 0 is a full sweep: fresh buffers need their first
        // begin_cycle before anything is pushable (see `Fifo::is_idle`).
        let mut hot_bufs = ActiveSet::new(num_bufs);
        let mut hot_nis = ActiveSet::new(n);
        let mut hot_routers = ActiveSet::new(n);
        for b in 0..num_bufs {
            hot_bufs.insert(b);
        }
        for i in 0..n {
            hot_nis.insert(i);
            hot_routers.insert(i);
        }
        let map = RegionMap::new(cfg.cols, cfg.rows, cfg.threads.max(1));
        let sharding = (cfg.threads > 1 && map.regions() > 1).then(|| {
            // The router pushing into input port `p` of `node` is the
            // neighbour in direction `p` (its opposite-facing output).
            let (cols, rows) = (cfg.cols, cfg.rows);
            let ports = [Port::North, Port::East, Port::South, Port::West];
            Sharding::new(&map, cfg.vcs, &|node, p| {
                Self::neighbor(cols, rows, node, ports[p])
            })
        });
        let regions = sharding.as_ref().map_or(1, |s| s.ctxs.len());
        let node_region = (0..n)
            .map(|i| {
                if sharding.is_some() {
                    u32::try_from(map.region_of(i)).expect("region fits u32")
                } else {
                    0
                }
            })
            .collect();
        Self {
            cfg,
            routers,
            bufs,
            nis,
            txs: (0..regions).map(|_| Slab::new()).collect(),
            node_region,
            sharding,
            now: 0,
            meter: ThroughputMeter::new(0),
            packets_delivered: 0,
            transfers_completed: 0,
            latency: Histogram::new(),
            stop_reason: StopReason::Budget,
            hot_bufs,
            hot_nis,
            hot_routers,
            scratch_bufs: Vec::with_capacity(num_bufs),
            scratch_nis: Vec::with_capacity(n),
            scratch_routers: Vec::with_capacity(n),
            work_items: 0,
            saturated: false,
            wall_cycles: 0,
            wall_secs: 0.0,
            cycles_skipped: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PacketNocConfig {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Why the last [`run`](Self::run) stopped.
    #[must_use]
    pub fn stop_reason(&self) -> StopReason {
        self.stop_reason
    }

    /// Packets delivered since construction (all time) — the baseline's
    /// wire-level counter behind [`SimReport::transfers_completed`].
    #[must_use]
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Arms the throughput meter to start measuring at absolute cycle
    /// `start` — what [`run`](Self::run) does internally; exposed for
    /// callers driving the engine cycle by cycle via [`step`](Self::step).
    pub fn begin_measurement(&mut self, start: Cycle) {
        self.meter = ThroughputMeter::new(start);
    }

    fn neighbor(cols: usize, rows: usize, node: usize, p: Port) -> Option<usize> {
        let (x, y) = (node % cols, node / cols);
        match p {
            Port::North => (y > 0).then(|| node - cols),
            Port::South => (y + 1 < rows).then(|| node + cols),
            Port::East => (x + 1 < cols).then(|| node + 1),
            Port::West => (x > 0).then(|| node - 1),
            Port::Local => None,
        }
    }

    /// Runs for at most `max_cycles`, measuring after `warmup`. Stops early
    /// when the source is done and the network drained.
    ///
    /// # Panics
    ///
    /// Panics when the mesh makes no forward progress for 100 000 cycles
    /// while flits or transfers are pending — the same no-forward-progress
    /// watchdog as the PATRONoC engine (a stuck flit indicates a routing
    /// or wiring bug; an idle mesh waiting for sparse arrivals is exempt).
    pub fn run<S: TrafficSource + ?Sized>(
        &mut self,
        source: &mut S,
        max_cycles: Cycle,
        warmup: Cycle,
    ) -> SimReport {
        self.begin_measurement(self.now + warmup);
        if self.sharding.is_some() {
            // Sharded cycles are parallel full sweeps: there is no per-item
            // activity tracking across regions, so run in the saturated
            // regime (empty sets, full-sweep semantics). Serial stepping
            // after this run remains exact — the saturated regime is a
            // legal scheduler state it knows how to leave.
            self.saturated = true;
            self.hot_bufs.clear();
            self.hot_nis.clear();
            self.hot_routers.clear();
            let workers = self.sharding.as_ref().map_or(1, |s| s.ctxs.len());
            crew_scope(workers, |crew| {
                self.run_loop(source, max_cycles, Some(crew))
            })
        } else {
            self.run_loop(source, max_cycles, None)
        }
    }

    fn run_loop<S: TrafficSource + ?Sized>(
        &mut self,
        source: &mut S,
        max_cycles: Cycle,
        crew: Option<&Crew<'_>>,
    ) -> SimReport {
        let deadline = self.now + max_cycles;
        self.stop_reason = StopReason::Budget;
        let mut watchdog = ProgressWatchdog::new(self.now, self.progress_marker());
        let wall_start = std::time::Instant::now();
        let first_cycle = self.now;
        while self.now < deadline {
            match crew {
                Some(crew) => self.step_sharded(source, crew),
                None => self.step(source),
            }
            if let Some(since) = watchdog.observe(self.now, self.progress_marker()) {
                if self.is_drained() {
                    // Not a stall: merely idle between sparse arrivals.
                    watchdog.excuse(self.now);
                    continue;
                }
                panic!(
                    "deadlock: no progress since cycle {} (now {}), {} packets delivered",
                    since, self.now, self.packets_delivered
                );
            }
            if source.is_done() && self.is_drained() {
                self.stop_reason = StopReason::Drained;
                break;
            }
            if let Some(target) = self.try_skip(source, deadline) {
                // The skipped span is provably uneventful, so the watchdog
                // must not count it towards a stall.
                watchdog.excuse(target);
            }
        }
        self.wall_cycles += self.now - first_cycle;
        self.wall_secs += wall_start.elapsed().as_secs_f64();
        self.snapshot_report()
    }

    /// Flit-level progress indicator for the watchdog: any metered byte,
    /// delivered packet or completed NI injection counts as progress.
    fn progress_marker(&self) -> (u64, u64) {
        let injected: u64 = self
            .nis
            .iter()
            .map(NetworkInterface::packets_injected)
            .sum();
        (
            self.meter.bytes() + self.meter.warmup_bytes(),
            self.packets_delivered + injected,
        )
    }

    /// Snapshot of the metrics at the current cycle — latency sampled per
    /// *packet* (injection → tail delivery), the baseline's native unit.
    /// [`run`](Self::run) returns exactly this after its loop exits.
    #[must_use]
    pub fn snapshot_report(&self) -> SimReport {
        let slab = self.allocation_stats();
        SimReport {
            cycles: self.now,
            payload_bytes: self.meter.bytes(),
            throughput_gib_s: self.meter.throughput_gib_s(self.now),
            throughput_bytes_s: self.meter.throughput_bytes_s(self.now),
            transfers_completed: self.transfers_completed,
            mean_latency: self.latency.mean(),
            p99_latency: self.latency.quantile(0.99),
            stop_reason: self.stop_reason,
            cycles_per_sec: if self.wall_secs > 0.0 {
                self.wall_cycles as f64 / self.wall_secs
            } else {
                0.0
            },
            threads: self.cfg.threads,
            slab_high_water: slab.high_water,
            allocs_per_kilocycle: slab.allocs as f64 * 1000.0 / self.now.max(1) as f64,
            cycles_skipped: self.cycles_skipped,
            state_digest: self.state_digest(),
        }
    }

    /// Whether no packet is in flight and all NIs are idle.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.txs.iter().all(Slab::is_empty) && self.nis.iter().all(NetworkInterface::is_idle)
    }

    /// The engine's half of the event-horizon contract
    /// (`simkit::horizon`): the earliest future cycle at which the mesh
    /// itself can change state without new stimulus. With flits or
    /// transfers in flight that is the very next cycle (`At(now)`); a
    /// fully drained mesh is [`Horizon::Never`] — a fixed point until a
    /// source injects.
    ///
    /// Draining alone ([`is_drained`](Self::is_drained)) is not a fixed
    /// point: a buffer emptied by the delivery that retired the last
    /// record still carries a stale cycle snapshot until its next
    /// `begin_cycle` (it sits in the hot set awaiting exactly that), and
    /// that refresh *is* a state change. The horizon therefore also
    /// requires every buffer to be [`Fifo::is_idle`] — reached one or two
    /// cycles after the drain — so a skip never jumps over a pending
    /// refresh.
    #[must_use]
    pub fn horizon(&self) -> Horizon {
        if self.is_drained() && self.bufs.iter().all(Fifo::is_idle) {
            Horizon::Never
        } else {
            Horizon::At(self.now)
        }
    }

    /// Event-horizon time skipping: when nothing observable can happen
    /// before some future cycle — the mesh is drained *and* the source's
    /// [`TrafficSource::next_arrival`] is strictly after `now` — jump
    /// `now` straight to that cycle (clamped to `deadline`) instead of
    /// ticking empty cycles. Returns the new `now` when a skip happened.
    ///
    /// Same correctness argument as the PATRONoC engine's `try_skip`:
    /// quiescence makes stepping a drained mesh a state no-op, and the
    /// source horizon promises every earlier `poll` yields `None` without
    /// touching the random stream, so the skipped span is bit-for-bit
    /// unobservable. Disabled by [`PacketNocConfig::time_skip`] = false
    /// or [`PacketNocConfig::full_sweep`].
    pub fn try_skip<S: TrafficSource + ?Sized>(
        &mut self,
        source: &S,
        deadline: Cycle,
    ) -> Option<Cycle> {
        if !self.cfg.time_skip || self.cfg.full_sweep || self.now >= deadline {
            return None;
        }
        let mut tracker = HorizonTracker::new();
        tracker.observe(self.horizon());
        tracker.observe(source.next_arrival(self.now));
        let horizon = tracker.earliest();
        if !horizon.is_after(self.now) {
            return None;
        }
        // Both parties are quiet until the horizon: a `Never`/`Never`
        // combination rides to the deadline (the run then stops on
        // Budget exactly as the reference loop would).
        let target = horizon.target(deadline);
        if target <= self.now {
            return None;
        }
        self.cycles_skipped += target - self.now;
        self.now = target;
        Some(target)
    }

    /// Telemetry of the in-flight-transfer arena — what
    /// [`SimReport::slab_high_water`] and
    /// [`SimReport::allocs_per_kilocycle`] are derived from.
    #[must_use]
    pub fn allocation_stats(&self) -> SlabStats {
        self.txs
            .iter()
            .map(Slab::stats)
            .fold(SlabStats::default(), SlabStats::merge)
    }

    /// Cumulative scheduler work: buffer refreshes plus NI/router steps,
    /// counted identically in active and full-sweep mode (deterministic,
    /// unlike wall clock).
    #[must_use]
    pub fn work_items(&self) -> u64 {
        self.work_items
    }

    /// One simulation cycle: activity-driven by default, or the reference
    /// full sweep when [`PacketNocConfig::full_sweep`] is set. Both paths
    /// produce bit-identical state evolution.
    pub fn step<S: TrafficSource + ?Sized>(&mut self, source: &mut S) {
        if self.cfg.full_sweep {
            self.step_full(source);
        } else {
            self.step_active(source);
        }
    }

    /// Stimulus, bounded per cycle and per NI backlog (see
    /// `PacketNocConfig::ni_queue_cap`): a saturated mesh backpressures
    /// the generator instead of buffering an unbounded transfer backlog.
    /// Runs full-sweep in both stepping modes — sources are stateful, so
    /// the poll call sequence must not depend on mesh activity. Reports
    /// via `wake` each node whose NI accepted at least one transfer.
    fn poll_stimulus<S: TrafficSource + ?Sized>(
        &mut self,
        source: &mut S,
        mut wake: impl FnMut(usize),
    ) {
        for node in 0..self.cfg.num_nodes() {
            for _ in 0..64 {
                if self.nis[node].queued() >= self.cfg.ni_queue_cap {
                    break;
                }
                let Some(t) = source.poll(node, self.now) else {
                    break;
                };
                // The transaction's single allocation: one arena record in
                // the source node's region, carried by handle in every
                // flit until retirement.
                let packets = self.nis[node].packets_for(t.bytes);
                let txs = &mut self.txs[self.node_region[node] as usize];
                let h = txs.alloc(TxRecord::new(node, t, packets));
                self.nis[node].enqueue(txs, h);
                wake(node);
            }
        }
    }

    /// Bookkeeping for one flit delivered to its local endpoint.
    fn on_delivery(&mut self, f: Flit, completions: &mut Vec<(usize, u64)>) {
        if f.kind == FlitKind::Head {
            self.meter.record(self.now, u64::from(f.payload));
        }
        if f.kind == FlitKind::Tail {
            self.packets_delivered += 1;
            self.latency.record(self.now.saturating_sub(f.injected_at));
            // The record lives in the *source* node's region slab.
            let txs = &mut self.txs[self.node_region[f.src] as usize];
            let tx = &mut txs[f.tx];
            tx.undelivered -= 1;
            if tx.undelivered == 0 {
                // Retirement: the last tail frees the arena record.
                let tx = txs.free(f.tx);
                self.transfers_completed += 1;
                completions.push((tx.src, tx.transfer.id));
            }
        }
    }

    /// The reference cycle: step *everything* (the pre-activity-driven
    /// behaviour, kept as the equivalence oracle). Also the body of the
    /// saturated regime; returns the number of live buffers so that
    /// regime knows when precise tracking starts paying again.
    fn step_full<S: TrafficSource + ?Sized>(&mut self, source: &mut S) -> usize {
        let vcs = self.cfg.vcs;
        let (cols, rows) = (self.cfg.cols, self.cfg.rows);
        self.work_items += (self.bufs.len() + 2 * self.nis.len()) as u64;
        let mut live = 0usize;
        for b in &mut self.bufs {
            b.begin_cycle();
            live += usize::from(!b.is_empty());
        }
        self.poll_stimulus(source, |_| {});
        // NI injection: one flit per node per cycle into the local port.
        for node in 0..self.cfg.num_nodes() {
            let bufs = &mut self.bufs;
            let now = self.now;
            let txs = &mut self.txs[self.node_region[node] as usize];
            self.nis[node].step(now, vcs, txs, |vc, flit| {
                let idx = Router::buf_index(node, LOCAL, vc, vcs);
                bufs[idx].push(flit).is_ok()
            });
        }
        // Routers (no wake bookkeeping in full-sweep mode).
        let neighbor = move |node: usize, p: Port| Self::neighbor(cols, rows, node, p);
        let mut completions: Vec<(usize, u64)> = Vec::new();
        for ri in 0..self.routers.len() {
            let delivered = self.routers[ri].step(self.bufs.as_mut_slice(), &neighbor, &mut |_| {});
            for d in delivered {
                self.on_delivery(d.flit, &mut completions);
            }
        }
        for (src, id) in completions {
            source.on_complete(src, id, self.now);
        }
        self.now += 1;
        live
    }

    /// Rebuilds the activity sets when the saturated regime hands back to
    /// precise tracking.
    fn rebuild_sets(&mut self) {
        let bufs_per_node = PORTS * self.cfg.vcs;
        for b in 0..self.bufs.len() {
            if !self.bufs[b].is_idle() {
                self.hot_bufs.insert(b);
                self.hot_routers.insert(b / bufs_per_node);
            }
        }
        for (n, ni) in self.nis.iter().enumerate() {
            if !ni.is_idle() {
                self.hot_nis.insert(n);
            }
        }
    }

    /// The activity-driven cycle: refresh only the hot flit buffers, step
    /// only NIs with work and routers next to live buffers, in the same
    /// ascending-node order as the full sweep. Skipped buffers are
    /// quiescent and skipped components would have been no-ops, so state
    /// evolution is bit-identical. A saturated mesh runs bookkeeping-free
    /// full-sweep cycles instead (see the `saturated` field).
    fn step_active<S: TrafficSource + ?Sized>(&mut self, source: &mut S) {
        let comps = 2 * self.nis.len();
        let full_items = self.bufs.len() + comps;
        if self.saturated {
            let live = self.step_full(source);
            // Counterfactual precise-mode cost ≈ live buffers + every NI
            // and router.
            if self
                .cfg
                .saturate
                .should_desaturate(live + comps, full_items)
            {
                self.saturated = false;
                self.rebuild_sets();
            }
            return;
        }
        let tracked = self.step_tracked(source);
        if self.cfg.saturate.should_saturate(tracked, full_items) {
            self.saturated = true;
            self.hot_bufs.clear();
            self.hot_nis.clear();
            self.hot_routers.clear();
        }
    }

    /// One precisely tracked cycle (the non-saturated regime). Returns the
    /// number of work items it touched (the regime switch input).
    fn step_tracked<S: TrafficSource + ?Sized>(&mut self, source: &mut S) -> usize {
        let vcs = self.cfg.vcs;
        let (cols, rows) = (self.cfg.cols, self.cfg.rows);
        let bufs_per_node = PORTS * vcs;
        // Phase 1: refresh hot buffers; live ones wake their router.
        let mut live = std::mem::take(&mut self.scratch_bufs);
        self.hot_bufs.drain_into(&mut live);
        self.work_items += live.len() as u64;
        for &b in &live {
            self.bufs[b].begin_cycle();
            // After a begin_cycle the snapshot is fresh, so quiescence
            // reduces to raw emptiness — an O(1) check.
            if !self.bufs[b].is_empty() {
                self.hot_bufs.insert(b);
                self.hot_routers.insert(b / bufs_per_node);
            }
        }
        self.scratch_bufs = live;
        // Phase 2: stimulus for every node; accepting wakes the NI.
        let mut woken = std::mem::take(&mut self.scratch_nis);
        woken.clear();
        self.poll_stimulus(source, |n| woken.push(n));
        for &n in &woken {
            self.hot_nis.insert(n);
        }
        self.scratch_nis = woken;
        // Freeze this cycle's work lists (ascending node order).
        let mut nis_now = std::mem::take(&mut self.scratch_nis);
        let mut routers_now = std::mem::take(&mut self.scratch_routers);
        self.hot_nis.drain_into(&mut nis_now);
        self.hot_routers.drain_into(&mut routers_now);
        self.work_items += (nis_now.len() + routers_now.len()) as u64;
        // Phase 3: NI injection. A busy NI (mid-packet or queued) stays
        // live, and exactly the local-port buffer it injected into is
        // marked for refresh next cycle.
        for &node in &nis_now {
            let bufs = &mut self.bufs;
            let hot_bufs = &mut self.hot_bufs;
            let now = self.now;
            let txs = &mut self.txs[self.node_region[node] as usize];
            self.nis[node].step(now, vcs, txs, |vc, flit| {
                let idx = Router::buf_index(node, LOCAL, vc, vcs);
                let accepted = bufs[idx].push(flit).is_ok();
                if accepted {
                    hot_bufs.insert(idx);
                }
                accepted
            });
            if !self.nis[node].is_idle() {
                self.hot_nis.insert(node);
            }
        }
        // Phase 4: routers next to live buffers. Each router reports the
        // exact downstream buffers it forwarded into (a credit-blocked
        // router wakes nobody; its own still-occupied input buffers keep
        // it live).
        let neighbor = move |node: usize, p: Port| Self::neighbor(cols, rows, node, p);
        let mut completions: Vec<(usize, u64)> = Vec::new();
        for &ri in &routers_now {
            let hot_bufs = &mut self.hot_bufs;
            let delivered =
                self.routers[ri].step(self.bufs.as_mut_slice(), &neighbor, &mut |didx| {
                    hot_bufs.insert(didx);
                });
            for d in delivered {
                self.on_delivery(d.flit, &mut completions);
            }
        }
        for (src, id) in completions {
            source.on_complete(src, id, self.now);
        }
        let tracked = self.scratch_bufs.len() + nis_now.len() + routers_now.len();
        self.scratch_nis = nis_now;
        self.scratch_routers = routers_now;
        self.now += 1;
        tracked
    }

    /// One region-sharded cycle (see [`crate::shard`]): a serial pre-phase
    /// refreshes boundary buffers and hands each pushing region a credit
    /// mirror, every region then sweeps its row band on its own worker,
    /// and a serial commit replays boundary pushes in ascending buffer
    /// order and delivery bookkeeping in ascending region (= ascending
    /// node) order — bit-identical to the serial full sweep.
    fn step_sharded<S: TrafficSource + ?Sized>(&mut self, source: &mut S, crew: &Crew<'_>) {
        let mut sharding = self
            .sharding
            .take()
            .expect("step_sharded without a partition");
        let vcs = self.cfg.vcs;
        let (cols, rows) = (self.cfg.cols, self.cfg.rows);
        self.work_items += (self.bufs.len() + 2 * self.nis.len()) as u64;
        // Serial pre-phase: refresh boundary buffers and capture their
        // fresh snapshots into the pushing regions' credit mirrors.
        for &(b, pr) in &sharding.boundary {
            self.bufs[b].begin_cycle();
            let ctx = &mut sharding.ctxs[pr as usize];
            let mi = ctx.mirror_of[b] as usize;
            ctx.mirrors[mi].capture(&self.bufs[b]);
        }
        self.poll_stimulus(source, |_| {});
        {
            let bufs = DisjointSlots::new(&mut self.bufs);
            let routers = DisjointSlots::new(&mut self.routers);
            let nis = DisjointSlots::new(&mut self.nis);
            let txs = DisjointSlots::new(&mut self.txs);
            let ctxs = DisjointSlots::new(&mut sharding.ctxs);
            let node_region = self.node_region.as_slice();
            let now = self.now;
            let neighbor = move |node: usize, p: Port| Self::neighbor(cols, rows, node, p);
            crew.run(&|r| {
                // SAFETY (all accesses below): region `r` runs on exactly
                // one worker, and a region's context, transaction slab,
                // NIs, routers and non-boundary buffers are touched by
                // that worker alone — the partition is disjoint by
                // construction, and foreign buffers resolve to mirrors.
                let ctx = unsafe { ctxs.get_mut(r) };
                for &b in &ctx.interior_bufs {
                    // SAFETY: ctx.interior_bufs holds only buffers interior
                    // to region r.
                    unsafe { bufs.get_mut(b) }.begin_cycle();
                }
                // SAFETY: the transaction slab is per-region, indexed by r
                // itself — each slot touched by its own worker only.
                let region_txs = unsafe { txs.get_mut(r) };
                for node in ctx.nodes.clone() {
                    // SAFETY: ctx.nodes is region r's node band; each NI
                    // belongs to exactly one node.
                    let ni = unsafe { nis.get_mut(node) };
                    ni.step(now, vcs, region_txs, |vc, flit| {
                        let idx = Router::buf_index(node, LOCAL, vc, vcs);
                        // SAFETY: the NI always injects into its own node's
                        // LOCAL input buffer (idx above) — never across a
                        // region boundary — and node is in region r's band.
                        unsafe { bufs.get_mut(idx) }.push(flit).is_ok()
                    });
                }
                let mut view = ShardBufView {
                    bufs: &bufs,
                    node_region,
                    bufs_per_node: PORTS * vcs,
                    region: u32::try_from(r).expect("region fits u32"),
                    mirror_of: &ctx.mirror_of,
                    mirrors: &mut ctx.mirrors,
                };
                for node in ctx.nodes.clone() {
                    // SAFETY: ctx.nodes is region r's node band; foreign
                    // buffers resolve to mirrors inside the view.
                    let delivered =
                        unsafe { routers.get_mut(node) }.step(&mut view, &neighbor, &mut |_| {});
                    ctx.deliveries.extend(delivered);
                }
            });
        }
        // Serial commit: boundary pushes in ascending buffer order, then
        // delivery bookkeeping region by region — regions are ascending
        // node bands swept in ascending router order, so this is exactly
        // the serial sweep's ascending-node delivery sequence.
        for &(b, pr) in &sharding.boundary {
            let ctx = &mut sharding.ctxs[pr as usize];
            let mi = ctx.mirror_of[b] as usize;
            ctx.mirrors[mi].commit(&mut self.bufs[b]);
        }
        let mut completions: Vec<(usize, u64)> = Vec::new();
        for r in 0..sharding.ctxs.len() {
            let mut deliveries = std::mem::take(&mut sharding.ctxs[r].deliveries);
            for d in deliveries.drain(..) {
                self.on_delivery(d.flit, &mut completions);
            }
            // Hand the (empty) allocation back for the next cycle.
            sharding.ctxs[r].deliveries = deliveries;
        }
        for (src, id) in completions {
            source.on_complete(src, id, self.now);
        }
        self.now += 1;
        self.sharding = Some(sharding);
    }
}

/// Checkpointing: compact binary snapshots of the complete deterministic
/// simulation state (see `simkit::snap` for the container format). A
/// snapshot captures everything the cycle loop evolves — flit buffers,
/// wormhole locks, arbiter cursors, NI queues, arena-resident transfer
/// records, counters, meter, scheduler — and **excludes** wall-clock
/// telemetry (`wall_cycles`, `wall_secs`), which restarts at zero on
/// restore. `snapshot` → `restore` → `run` is bit-identical to running
/// straight through, which is what lets `bench::sweep` fork many
/// measurement runs off one warm-up.
///
/// Slab handles are never serialized raw: slot indices are allocation
/// accidents (they differ across thread counts and across a restore), so
/// records are numbered by a canonical first-reference traversal and every
/// flit, queue entry and emission references that number instead — see
/// `canonical_txs`.
impl PacketNocSim {
    /// This engine's discriminant in the snapshot header.
    pub const SNAP_KIND: u8 = 2;

    /// Configuration fingerprint carried in the snapshot header: FNV-1a 64
    /// over the canonical encoding of every behaviour-affecting
    /// configuration field. The stepping-strategy knobs —
    /// [`PacketNocConfig::threads`], [`PacketNocConfig::full_sweep`] and
    /// the saturate thresholds — are deliberately **excluded**: every
    /// stepping strategy evolves bit-identical state (pinned by the
    /// equivalence tests), so a snapshot is portable across all of them
    /// and the state digest never depends on how the state was stepped.
    #[must_use]
    pub fn shape(&self) -> u64 {
        let cfg = &self.cfg;
        let mut e = Encoder::new(0, 0);
        e.usize(cfg.cols);
        e.usize(cfg.rows);
        e.usize(cfg.vcs);
        e.usize(cfg.buf_flits);
        e.u32(cfg.flit_bytes);
        e.u16(cfg.packet_flits);
        e.u32(cfg.payload_per_packet);
        e.u32(cfg.router_extra_latency);
        e.usize(cfg.ni_queue_cap);
        e.digest()
    }

    /// Serializes the complete deterministic state as a self-validating
    /// byte string. Restoring it (on an engine built from an equivalent
    /// configuration) and continuing reproduces a straight run bit for
    /// bit.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new(Self::SNAP_KIND, self.shape());
        self.encode_state(&mut e, true);
        e.finish()
    }

    /// FNV-1a 64 digest of the canonical *comparable* state: simulation
    /// time plus every buffer, router, NI and in-flight record, and the
    /// delivery counters and latency histogram they feed. Excluded on
    /// purpose — the meter (its warm-up split differs between a straight
    /// run and a warm-started fork measuring the same window), the
    /// scheduler and slab telemetry (both differ between serial and
    /// sharded stepping while the simulated hardware state does not), and
    /// the stop reason. Equal digests ⇔ equal hardware state, which is
    /// what the serial-vs-sharded and straight-vs-fork equivalence tests
    /// assert.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut e = Encoder::new(Self::SNAP_KIND, self.shape());
        self.encode_state(&mut e, false);
        e.digest()
    }

    /// Enumerates every live arena record in canonical first-reference
    /// order: NI queues (then the in-emission record) in ascending node
    /// order, then buffered flits in ascending buffer order. Returns the
    /// per-region slot → canonical-number map alongside the ordered
    /// records.
    ///
    /// Every live record is reachable: a record with unsent packets sits
    /// in its NI's queue (or is the packet mid-emission), and a record
    /// fully serialized but not yet retired still has an undelivered tail
    /// flit in some buffer — asserted below, since an unreachable record
    /// would silently vanish from the snapshot.
    fn canonical_txs(&self) -> (CanonMap, Vec<(u32, TxHandle)>) {
        let mut map: CanonMap = vec![Vec::new(); self.txs.len()];
        let mut order: Vec<(u32, TxHandle)> = Vec::new();
        let mut note = |region: usize, h: TxHandle| {
            let slots = &mut map[region];
            let slot = h.index();
            if slot >= slots.len() {
                slots.resize(slot + 1, None);
            }
            if slots[slot].is_none() {
                slots[slot] = Some(u32::try_from(order.len()).expect("record count fits u32"));
                order.push((u32::try_from(region).expect("region fits u32"), h));
            }
        };
        for (node, ni) in self.nis.iter().enumerate() {
            let region = self.node_region[node] as usize;
            ni.for_each_tx(&self.txs[region], |h| note(region, h));
        }
        for f in self.bufs.iter().flat_map(Fifo::iter) {
            note(self.node_region[f.src] as usize, f.tx);
        }
        let live: usize = self.txs.iter().map(Slab::len).sum();
        assert_eq!(order.len(), live, "every live record must be referenced");
        (map, order)
    }

    /// Writes the engine state into `e`. `full` includes the run-control
    /// state a restore needs (stop reason, meter, scheduler, slab
    /// telemetry); the digest path omits it (see
    /// [`state_digest`](Self::state_digest)).
    fn encode_state(&self, e: &mut Encoder, full: bool) {
        let (canon, order) = self.canonical_txs();
        let canon_of =
            |region: usize, h: TxHandle| u64::from(canon[region][h.index()].expect("live record"));
        e.section(1, |e| {
            e.u64(self.now);
            if full {
                e.byte(match self.stop_reason {
                    StopReason::Budget => 0,
                    StopReason::Drained => 1,
                    StopReason::WindowComplete => 2,
                });
            }
        });
        if full {
            e.section(2, |e| self.meter.encode(e));
        }
        e.section(3, |e| {
            e.usize(order.len());
            for &(region, h) in &order {
                let rec = &self.txs[region as usize][h];
                e.usize(rec.src);
                encode_transfer(e, &rec.transfer);
                e.u64(rec.to_send);
                e.u64(rec.undelivered);
            }
        });
        e.section(4, |e| {
            for (node, ni) in self.nis.iter().enumerate() {
                let region = self.node_region[node] as usize;
                ni.encode_state(e, &self.txs[region], &mut |h| canon_of(region, h));
            }
        });
        e.section(5, |e| {
            for buf in &self.bufs {
                buf.encode_with(e, |e, f| {
                    e.byte(match f.kind {
                        FlitKind::Head => 0,
                        FlitKind::Body => 1,
                        FlitKind::Tail => 2,
                    });
                    e.u64(canon_of(self.node_region[f.src] as usize, f.tx));
                    e.u32(f.payload);
                    e.u64(f.injected_at);
                });
            }
        });
        e.section(6, |e| {
            for r in &self.routers {
                r.encode_state(e);
            }
        });
        e.section(7, |e| {
            e.u64(self.packets_delivered);
            e.u64(self.transfers_completed);
            self.latency.encode(e);
        });
        if full {
            e.section(8, |e| {
                e.bool(self.saturated);
                e.u64(self.work_items);
                for set in [&self.hot_bufs, &self.hot_nis, &self.hot_routers] {
                    let idx = set.indices();
                    e.usize(idx.len());
                    for i in idx {
                        e.usize(i);
                    }
                }
            });
            e.section(9, |e| {
                let s = self.allocation_stats();
                e.u64(s.allocs);
                e.u64(s.high_water);
            });
        }
    }

    /// Replaces this engine's state with the snapshot's, **all or
    /// nothing**: the bytes are validated (container digest first, then
    /// every structural invariant) while rebuilding into a fresh engine,
    /// and only a fully successful decode is committed — on any error the
    /// current state is left untouched.
    ///
    /// The snapshot must come from an engine whose configuration matches
    /// this one's [`shape`](Self::shape); thread count may differ.
    ///
    /// # Errors
    ///
    /// A [`SnapError`] naming the first violated container or engine
    /// invariant.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut fresh = Self::new(self.cfg.clone());
        fresh.decode_from(bytes)?;
        *self = fresh;
        Ok(())
    }

    /// Decodes `bytes` into this (freshly built) engine. Every index and
    /// counter is validated against the engine's actual geometry before
    /// use, so crafted (digest-valid) bytes are rejected instead of
    /// panicking later in the cycle loop.
    fn decode_from(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut d = Decoder::new(
            bytes,
            Self::SNAP_KIND,
            self.shape(),
            DecodeLimits::default(),
        )?;
        let nodes = self.cfg.num_nodes();
        let ppp = u64::from(self.cfg.payload_per_packet);
        let end = d.begin_section(1)?;
        self.now = d.u64()?;
        self.stop_reason = match d.byte()? {
            0 => StopReason::Budget,
            1 => StopReason::Drained,
            2 => StopReason::WindowComplete,
            _ => return Err(corrupt("unknown stop reason")),
        };
        d.end_section(end)?;
        let end = d.begin_section(2)?;
        self.meter = ThroughputMeter::decode(&mut d)?;
        d.end_section(end)?;
        // The canonical record table: re-allocate every record in its
        // source node's region slab (this engine's own partition, so a
        // snapshot from a differently-threaded engine lands correctly)
        // and remember handle, source and destination per canonical
        // number for the reference decoders below.
        let end = d.begin_section(3)?;
        let n_rec = d.count("transfer records")?;
        let mut canon: Vec<(TxHandle, usize, usize)> = Vec::with_capacity(n_rec);
        for _ in 0..n_rec {
            let src = d.usize()?;
            if src >= nodes {
                return Err(corrupt("record source off the mesh"));
            }
            let transfer = decode_transfer(&mut d)?;
            let to_send = d.u64()?;
            let undelivered = d.u64()?;
            let total = transfer.bytes.div_ceil(ppp).max(1);
            if undelivered == 0 || undelivered > total || to_send > undelivered {
                return Err(corrupt("record packet accounting out of bounds"));
            }
            let dst = transfer.dst;
            let region = self.node_region[src] as usize;
            let h = self.txs[region].alloc(TxRecord {
                src,
                transfer,
                to_send,
                undelivered,
            });
            canon.push((h, src, dst));
        }
        d.end_section(end)?;
        let end = d.begin_section(4)?;
        {
            let mut queued = vec![false; canon.len()];
            for node in 0..nodes {
                let region = self.node_region[node] as usize;
                self.nis[node].restore_state(
                    &mut d,
                    &mut self.txs[region],
                    self.cfg.vcs,
                    &mut |idx, exclusive| {
                        let i = usize::try_from(idx)
                            .map_err(|_| corrupt("tx reference out of range"))?;
                        let &(h, src, dst) =
                            canon.get(i).ok_or(corrupt("tx reference out of range"))?;
                        if exclusive {
                            if queued[i] {
                                return Err(corrupt("record queued twice"));
                            }
                            queued[i] = true;
                        }
                        Ok((h, src, dst))
                    },
                )?;
            }
        }
        d.end_section(end)?;
        let end = d.begin_section(5)?;
        for b in 0..self.bufs.len() {
            self.bufs[b] = Fifo::decode_with(&mut d, self.cfg.buf_flits, |d| {
                let kind = match d.byte()? {
                    0 => FlitKind::Head,
                    1 => FlitKind::Body,
                    2 => FlitKind::Tail,
                    _ => return Err(corrupt("unknown flit kind")),
                };
                let i =
                    usize::try_from(d.u64()?).map_err(|_| corrupt("tx reference out of range"))?;
                let &(tx, src, dst) = canon.get(i).ok_or(corrupt("tx reference out of range"))?;
                let payload = d.u32()?;
                let injected_at = d.u64()?;
                Ok(Flit {
                    kind,
                    src,
                    dst,
                    tx,
                    payload,
                    injected_at,
                })
            })?;
        }
        d.end_section(end)?;
        let end = d.begin_section(6)?;
        for r in &mut self.routers {
            r.restore_state(&mut d)?;
        }
        d.end_section(end)?;
        let end = d.begin_section(7)?;
        self.packets_delivered = d.u64()?;
        self.transfers_completed = d.u64()?;
        self.latency = Histogram::decode(&mut d)?;
        d.end_section(end)?;
        let end = d.begin_section(8)?;
        self.saturated = d.bool()?;
        self.work_items = d.u64()?;
        // The fresh engine's scheduler holds everything (the cycle-0 full
        // sweep); replace that wholesale with the captured membership.
        for set in [&mut self.hot_bufs, &mut self.hot_nis, &mut self.hot_routers] {
            set.clear();
            let n = d.count("active-set members")?;
            for _ in 0..n {
                let i = d.usize()?;
                if i >= set.capacity() {
                    return Err(corrupt("active-set index out of range"));
                }
                set.insert(i);
            }
        }
        d.end_section(end)?;
        let end = d.begin_section(9)?;
        let (allocs, high_water) = (d.u64()?, d.u64()?);
        d.end_section(end)?;
        d.finish()?;
        // Telemetry continuation: restoring re-allocated every live record,
        // so credit the arena family with the snapshot's history minus
        // what rebuilding already counted (saturating: a snapshot from a
        // differently-sharded engine may fragment differently).
        let s = self.allocation_stats();
        self.txs[0].absorb_stats(
            allocs.saturating_sub(s.allocs),
            high_water.saturating_sub(s.high_water),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{Transfer, TransferKind};

    struct OneEach {
        issued: Vec<bool>,
        completed: usize,
        bytes: u64,
    }

    impl OneEach {
        fn new(n: usize, bytes: u64) -> Self {
            Self {
                issued: vec![false; n],
                completed: 0,
                bytes,
            }
        }
    }

    impl TrafficSource for OneEach {
        fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
            if self.issued[master] {
                return None;
            }
            self.issued[master] = true;
            Some(Transfer {
                id: master as u64,
                dst: (master + 5) % self.issued.len(),
                offset: 0,
                bytes: self.bytes,
                kind: TransferKind::Write,
            })
        }

        fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
            self.completed += 1;
        }

        fn is_done(&self) -> bool {
            self.completed == self.issued.len()
        }
    }

    #[test]
    fn all_transfers_deliver_exact_payload() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let mut src = OneEach::new(16, 100);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert_eq!(report.payload_bytes, 16 * 100);
        assert!(sim.is_drained());
        assert_eq!(report.stop_reason, StopReason::Drained);
        assert_eq!(report.transfers_completed, 16);
        // 100 B at 4 B/packet = 25 packets per transfer.
        assert_eq!(sim.packets_delivered(), 16 * 25);
    }

    #[test]
    fn high_performance_config_also_drains() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        let mut src = OneEach::new(16, 64);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert_eq!(report.payload_bytes, 16 * 64);
    }

    #[test]
    fn packet_latency_scales_with_distance() {
        // Two runs on a 4×4: 1-hop vs 6-hop transfers.
        struct Fixed {
            dst: usize,
            sent: bool,
            done: bool,
        }
        impl TrafficSource for Fixed {
            fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
                if master != 0 || self.sent {
                    return None;
                }
                self.sent = true;
                Some(Transfer {
                    id: 1,
                    dst: self.dst,
                    offset: 0,
                    bytes: 4,
                    kind: TransferKind::Write,
                })
            }
            fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let mut near = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let near_report = near.run(
            &mut Fixed {
                dst: 1,
                sent: false,
                done: false,
            },
            10_000,
            0,
        );
        let mut far = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let far_report = far.run(
            &mut Fixed {
                dst: 15,
                sent: false,
                done: false,
            },
            10_000,
            0,
        );
        assert!(
            far_report.mean_latency > near_report.mean_latency + 4.0,
            "far {} vs near {}",
            far_report.mean_latency,
            near_report.mean_latency
        );
    }

    #[test]
    fn serialization_makes_big_transfers_slow() {
        // 1 KiB = 256 packets of 8 flits: at one flit per cycle on the
        // local link, at least 2048 cycles — the protocol-translation tax.
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let mut src = OneEach::new(16, 1024);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert!(report.cycles >= 2048, "only {} cycles", report.cycles);
    }

    #[test]
    fn idealized_payload_packing_multiplies_throughput() {
        // Ablation: an NI that packs payload into every non-header flit
        // (28 B per 8-flit packet) moves the same transfer volume with 7x
        // fewer packets, so the same transfers complete in ~7x fewer
        // cycles.
        let run = |payload: u32| {
            let cfg = PacketNocConfig {
                payload_per_packet: payload,
                ..PacketNocConfig::noxim_high_performance()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = OneEach::new(16, 2800);
            sim.run(&mut src, 3_000_000, 0).cycles
        };
        let word_granular = run(4);
        let packed = run(28);
        assert!(
            word_granular > 4 * packed,
            "word-granular {word_granular} vs packed {packed} cycles"
        );
    }

    #[test]
    fn wormhole_throughput_bounded_by_link_rate() {
        // 16 nodes × 1 flit/cycle injection is the hard ceiling; delivered
        // payload can never exceed payload_per_packet/packet_flits of it.
        let cfg = PacketNocConfig::noxim_high_performance();
        let ppf = f64::from(cfg.payload_per_packet) / f64::from(cfg.packet_flits);
        let mut sim = PacketNocSim::new(cfg);
        let mut src = OneEach::new(16, 10_000);
        let report = sim.run(&mut src, 50_000, 0);
        let bytes_per_cycle = report.payload_bytes as f64 / report.cycles as f64;
        assert!(
            bytes_per_cycle <= 16.0 * ppf + 1e-9,
            "{bytes_per_cycle} B/cycle exceeds the serialization ceiling"
        );
    }

    #[test]
    fn ni_queue_cap_bounds_backlog_without_changing_results() {
        let run = |cap: usize| {
            let cfg = PacketNocConfig {
                ni_queue_cap: cap,
                ..PacketNocConfig::noxim_compact()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = traffic::UniformRandom::new(traffic::UniformConfig {
                masters: 16,
                slaves: (0..16).collect(),
                load: 1.0,
                bytes_per_cycle: 4.0,
                max_transfer: 100,
                read_fraction: 0.5,
                region_size: 1 << 24,
                seed: 5,
            });
            let r = sim.run(&mut src, 10_000, 2_000);
            let backlog: usize = sim.nis.iter().map(NetworkInterface::queued).max().unwrap();
            (r.payload_bytes, sim.packets_delivered(), backlog)
        };
        // The cap only defers polling of the open-loop source, so delivered
        // traffic is identical; only the retained backlog differs.
        let (bytes_small, packets_small, backlog_small) = run(2);
        let (bytes_big, packets_big, _) = run(1 << 32);
        assert_eq!((bytes_small, packets_small), (bytes_big, packets_big));
        assert!(backlog_small <= 2, "backlog {backlog_small} exceeds cap");
    }

    /// Runs the same Poisson workload in active and full-sweep mode.
    fn run_both_modes(load: f64, window: u64) -> [(simkit::SimReport, u64, u64); 2] {
        [true, false].map(|full_sweep| {
            let cfg = PacketNocConfig {
                full_sweep,
                ..PacketNocConfig::noxim_high_performance()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = traffic::UniformRandom::new(traffic::UniformConfig {
                masters: 16,
                slaves: (0..16).collect(),
                load,
                bytes_per_cycle: 4.0,
                max_transfer: 100,
                read_fraction: 0.5,
                region_size: 1 << 24,
                seed: 0x5EED,
            });
            let report = sim.run(&mut src, window, window / 5);
            (report, sim.packets_delivered(), sim.work_items())
        })
    }

    #[test]
    fn active_stepping_is_bit_identical_to_full_sweep() {
        for load in [0.001, 0.3, 1.0] {
            let [(fr, fp, _), (ar, ap, _)] = run_both_modes(load, 20_000);
            assert_eq!(fr, ar, "report differs at load {load}");
            assert_eq!(fp, ap, "packet count differs at load {load}");
        }
    }

    /// Runs the same Poisson workload with time skipping on or off.
    fn run_skip_modes(load: f64, window: u64) -> [(simkit::SimReport, u64); 2] {
        [false, true].map(|time_skip| {
            let cfg = PacketNocConfig {
                time_skip,
                ..PacketNocConfig::noxim_high_performance()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = traffic::UniformRandom::new(traffic::UniformConfig {
                masters: 16,
                slaves: (0..16).collect(),
                load,
                bytes_per_cycle: 4.0,
                max_transfer: 100,
                read_fraction: 0.5,
                region_size: 1 << 24,
                seed: 0x5EED,
            });
            let report = sim.run(&mut src, window, window / 5);
            (report, sim.packets_delivered())
        })
    }

    #[test]
    fn time_skipping_is_bit_identical_to_the_cycle_loop() {
        for load in [0.001, 0.3, 1.0] {
            let [(rr, rp), (sr, sp)] = run_skip_modes(load, 20_000);
            assert_eq!(rr, sr, "report differs at load {load}");
            assert_eq!(rp, sp, "packet count differs at load {load}");
            assert_eq!(rr.cycles_skipped, 0, "reference must not skip");
        }
    }

    #[test]
    fn time_skipping_crosses_idle_gaps_at_low_load() {
        let [_, (skipped, _)] = run_skip_modes(0.001, 20_000);
        assert!(
            skipped.cycles_skipped > 10_000,
            "only {} of 20 000 mostly-idle cycles skipped",
            skipped.cycles_skipped
        );
        // A saturated mesh has essentially no idle gaps (a stray cycle
        // before the very first arrivals land is fine).
        let [_, (busy, _)] = run_skip_modes(1.0, 20_000);
        assert!(
            busy.cycles_skipped < 100,
            "saturated run skipped {} cycles",
            busy.cycles_skipped
        );
    }

    #[test]
    fn full_sweep_forces_time_skipping_off() {
        let cfg = PacketNocConfig {
            full_sweep: true,
            ..PacketNocConfig::noxim_compact()
        };
        assert!(cfg.time_skip, "skip defaults on even in the debug sweep");
        let mut sim = PacketNocSim::new(cfg);
        let mut src = OneEach::new(16, 100);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert_eq!(report.stop_reason, StopReason::Drained);
        assert_eq!(report.cycles_skipped, 0, "the reference path never skips");
    }

    /// Runs the same Poisson workload region-sharded across `threads`
    /// workers.
    fn run_threaded(threads: usize, load: f64, window: u64) -> (simkit::SimReport, u64) {
        let cfg = PacketNocConfig {
            threads,
            ..PacketNocConfig::noxim_high_performance()
        };
        let mut sim = PacketNocSim::new(cfg);
        let mut src = traffic::UniformRandom::new(traffic::UniformConfig {
            masters: 16,
            slaves: (0..16).collect(),
            load,
            bytes_per_cycle: 4.0,
            max_transfer: 100,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed: 0x5EED,
        });
        let report = sim.run(&mut src, window, window / 5);
        (report, sim.packets_delivered())
    }

    #[test]
    fn sharded_stepping_is_bit_identical_to_serial() {
        for load in [0.001, 0.3, 1.0] {
            let serial = run_threaded(1, load, 20_000);
            for threads in [2, 3, 4, 8] {
                let sharded = run_threaded(threads, load, 20_000);
                assert_eq!(
                    serial, sharded,
                    "results differ at load {load} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn sharded_sim_can_keep_stepping_serially_after_a_run() {
        // A sharded run leaves the scheduler in the saturated regime;
        // manual serial stepping afterwards must still drain correctly.
        let cfg = PacketNocConfig {
            threads: 4,
            ..PacketNocConfig::noxim_compact()
        };
        let mut sim = PacketNocSim::new(cfg);
        let mut src = OneEach::new(16, 100);
        sim.run(&mut src, 64, 0); // stop with packets still in flight
        assert!(!sim.is_drained(), "the run window was chosen mid-flight");
        while !(src.is_done() && sim.is_drained()) {
            sim.step(&mut src);
            assert!(sim.now() < 1_000_000, "serial drain stalled");
        }
        assert_eq!(src.completed, 16);
    }

    #[test]
    fn active_stepping_skips_most_work_when_idle() {
        let [(_, _, full_work), (_, _, active_work)] = run_both_modes(0.001, 50_000);
        assert!(
            active_work * 5 <= full_work,
            "active {active_work} vs full {full_work} work items"
        );
    }

    /// A transfer whose destination lies outside the mesh: XY routing
    /// steers its flits South off the bottom edge, where no output port
    /// exists, wedging them forever — a deliberate deadlock.
    struct OffMesh(bool);
    impl TrafficSource for OffMesh {
        fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
            if master != 0 || self.0 {
                return None;
            }
            self.0 = true;
            Some(Transfer {
                id: 1,
                dst: 99,
                offset: 0,
                bytes: 4,
                kind: TransferKind::Write,
            })
        }
    }

    #[test]
    #[should_panic(expected = "deadlock: no progress since cycle")]
    fn watchdog_trips_on_deadlocked_traffic() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        sim.run(&mut OffMesh(false), 150_000, 0);
    }

    #[test]
    fn watchdog_threshold_is_one_hundred_thousand_cycles() {
        // The wedged packet makes its last progress when the NI finishes
        // injecting it; the watchdog must stay quiet for the documented
        // 100 000 cycles after that and only panic beyond them.
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let report = sim.run(&mut OffMesh(false), 100_000, 0);
        assert_eq!(report.transfers_completed, 0);
        assert!(!sim.is_drained(), "the wedged flits are still in flight");
    }

    #[test]
    fn report_carries_slab_telemetry() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let mut src = OneEach::new(16, 100);
        let report = sim.run(&mut src, 1_000_000, 0);
        let stats = sim.allocation_stats();
        assert_eq!(stats.live, 0, "every record retired on drain");
        assert_eq!(stats.allocs, 16, "exactly one allocation per transfer");
        assert!(report.slab_high_water >= 1);
        assert!(report.allocs_per_kilocycle > 0.0);
    }

    #[test]
    fn self_traffic_delivered_locally() {
        struct SelfSend(bool, bool);
        impl TrafficSource for SelfSend {
            fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
                if master != 3 || self.0 {
                    return None;
                }
                self.0 = true;
                Some(Transfer {
                    id: 0,
                    dst: 3,
                    offset: 0,
                    bytes: 8,
                    kind: TransferKind::Write,
                })
            }
            fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
                self.1 = true;
            }
            fn is_done(&self) -> bool {
                self.1
            }
        }
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let report = sim.run(&mut SelfSend(false, false), 10_000, 0);
        assert_eq!(report.payload_bytes, 8);
    }

    /// A clonable Poisson-ish stimulus with plenty of in-flight state at any
    /// capture point.
    fn poisson(seed: u64) -> traffic::UniformRandom {
        traffic::UniformRandom::new_copies(traffic::UniformConfig {
            masters: 16,
            slaves: (0..16).collect(),
            load: 0.6,
            bytes_per_cycle: 4.0,
            max_transfer: 100,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed,
        })
    }

    #[test]
    fn snapshot_restore_run_is_bit_identical() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        let mut src = poisson(11);
        sim.run(&mut src, 3_000, 0);
        let bytes = sim.snapshot();
        let mut forked_src = src.clone();

        let straight = sim.run(&mut src, 2_000, 0);
        let mut forked = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        forked.restore(&bytes).expect("snapshot restores");
        assert_eq!(forked.now(), 3_000);
        let replay = forked.run(&mut forked_src, 2_000, 0);

        assert_eq!(straight, replay);
        assert_eq!(sim.state_digest(), forked.state_digest());
    }

    #[test]
    fn snapshot_is_portable_across_thread_counts() {
        let mut serial = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        let mut src = poisson(23);
        serial.run(&mut src, 3_000, 0);
        let bytes = serial.snapshot();
        let mut forked_src = src.clone();

        let serial_report = serial.run(&mut src, 2_000, 0);
        let mut sharded = PacketNocSim::new(PacketNocConfig {
            threads: 4,
            ..PacketNocConfig::noxim_high_performance()
        });
        sharded.restore(&bytes).expect("snapshot restores");
        let sharded_report = sharded.run(&mut forked_src, 2_000, 0);

        assert_eq!(serial_report, sharded_report);
        assert_eq!(serial.state_digest(), sharded.state_digest());
    }

    #[test]
    fn snapshot_of_restored_engine_is_byte_identical() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        sim.run(&mut poisson(5), 2_500, 0);
        let bytes = sim.snapshot();
        let mut again = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        again.restore(&bytes).expect("snapshot restores");
        assert_eq!(bytes, again.snapshot());
    }

    #[test]
    fn corrupt_snapshot_leaves_the_engine_untouched() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        sim.run(&mut poisson(7), 2_000, 0);
        let mut bytes = sim.snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;

        let mut target = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        target.run(&mut poisson(9), 1_000, 0);
        let digest = target.state_digest();
        assert!(target.restore(&bytes).is_err());
        assert_eq!(target.state_digest(), digest);
        assert_eq!(target.now(), 1_000);
    }

    #[test]
    fn snapshot_rejects_a_different_shape() {
        let mut small = PacketNocSim::new(PacketNocConfig::noxim_compact());
        small.run(&mut poisson(3), 500, 0);
        let bytes = small.snapshot();
        let mut big = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        assert!(matches!(big.restore(&bytes), Err(SnapError::ShapeMismatch)));
    }
}
