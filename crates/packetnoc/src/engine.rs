//! The baseline NoC simulator.
//!
//! Drives a `cols × rows` mesh of wormhole routers and per-node NIs from a
//! [`TrafficSource`], measuring delivered payload exactly like the PATRONoC
//! engine so Fig. 4's curves are an apples-to-apples comparison.

use crate::config::PacketNocConfig;
use crate::ni::NetworkInterface;
use crate::router::{Flit, FlitKind, Port, Router, LOCAL, PORTS};
use simkit::{Cycle, Fifo, Histogram, SimReport, StopReason, ThroughputMeter};
use std::collections::HashMap;

use traffic::TrafficSource;

/// The packet-based baseline NoC simulator.
#[derive(Debug)]
pub struct PacketNocSim {
    cfg: PacketNocConfig,
    routers: Vec<Router>,
    bufs: Vec<Fifo<Flit>>,
    nis: Vec<NetworkInterface>,
    /// (src, transfer id) → packets still in flight.
    inflight: HashMap<(usize, u64), u64>,
    now: Cycle,
    meter: ThroughputMeter,
    packets_delivered: u64,
    transfers_completed: u64,
    latency: Histogram,
    stop_reason: StopReason,
}

impl PacketNocSim {
    /// Builds the mesh.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration
    /// (see [`PacketNocConfig::assert_valid`]).
    #[must_use]
    pub fn new(cfg: PacketNocConfig) -> Self {
        cfg.assert_valid();
        let n = cfg.num_nodes();
        let routers = (0..n).map(|i| Router::new(i, cfg.cols, cfg.vcs)).collect();
        let bufs = (0..n * PORTS * cfg.vcs)
            .map(|_| Fifo::new(cfg.buf_flits))
            .collect();
        let nis = (0..n).map(|i| NetworkInterface::new(i, &cfg)).collect();
        Self {
            cfg,
            routers,
            bufs,
            nis,
            inflight: HashMap::new(),
            now: 0,
            meter: ThroughputMeter::new(0),
            packets_delivered: 0,
            transfers_completed: 0,
            latency: Histogram::new(),
            stop_reason: StopReason::Budget,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PacketNocConfig {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Why the last [`run`](Self::run) stopped.
    #[must_use]
    pub fn stop_reason(&self) -> StopReason {
        self.stop_reason
    }

    /// Packets delivered since construction (all time) — the baseline's
    /// wire-level counter behind [`SimReport::transfers_completed`].
    #[must_use]
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Arms the throughput meter to start measuring at absolute cycle
    /// `start` — what [`run`](Self::run) does internally; exposed for
    /// callers driving the engine cycle by cycle via [`step`](Self::step).
    pub fn begin_measurement(&mut self, start: Cycle) {
        self.meter = ThroughputMeter::new(start);
    }

    fn neighbor(cols: usize, rows: usize, node: usize, p: Port) -> Option<usize> {
        let (x, y) = (node % cols, node / cols);
        match p {
            Port::North => (y > 0).then(|| node - cols),
            Port::South => (y + 1 < rows).then(|| node + cols),
            Port::East => (x + 1 < cols).then(|| node + 1),
            Port::West => (x > 0).then(|| node - 1),
            Port::Local => None,
        }
    }

    /// Runs for at most `max_cycles`, measuring after `warmup`. Stops early
    /// when the source is done and the network drained.
    pub fn run<S: TrafficSource + ?Sized>(
        &mut self,
        source: &mut S,
        max_cycles: Cycle,
        warmup: Cycle,
    ) -> SimReport {
        self.begin_measurement(self.now + warmup);
        let deadline = self.now + max_cycles;
        self.stop_reason = StopReason::Budget;
        while self.now < deadline {
            self.step(source);
            if source.is_done() && self.is_drained() {
                self.stop_reason = StopReason::Drained;
                break;
            }
        }
        self.snapshot_report()
    }

    /// Snapshot of the metrics at the current cycle — latency sampled per
    /// *packet* (injection → tail delivery), the baseline's native unit.
    /// [`run`](Self::run) returns exactly this after its loop exits.
    #[must_use]
    pub fn snapshot_report(&self) -> SimReport {
        SimReport {
            cycles: self.now,
            payload_bytes: self.meter.bytes(),
            throughput_gib_s: self.meter.throughput_gib_s(self.now),
            throughput_bytes_s: self.meter.throughput_bytes_s(self.now),
            transfers_completed: self.transfers_completed,
            mean_latency: self.latency.mean(),
            p99_latency: self.latency.quantile(0.99),
            stop_reason: self.stop_reason,
        }
    }

    /// Whether no packet is in flight and all NIs are idle.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.inflight.is_empty() && self.nis.iter().all(NetworkInterface::is_idle)
    }

    /// One simulation cycle.
    pub fn step<S: TrafficSource + ?Sized>(&mut self, source: &mut S) {
        let (cols, rows, vcs) = (self.cfg.cols, self.cfg.rows, self.cfg.vcs);
        for b in &mut self.bufs {
            b.begin_cycle();
        }
        // Stimulus, bounded per cycle and per NI backlog (see
        // `PacketNocConfig::ni_queue_cap`): a saturated mesh backpressures
        // the generator instead of buffering an unbounded transfer backlog.
        for node in 0..self.cfg.num_nodes() {
            for _ in 0..64 {
                if self.nis[node].queued() >= self.cfg.ni_queue_cap {
                    break;
                }
                let Some(t) = source.poll(node, self.now) else {
                    break;
                };
                let packets = self.nis[node].enqueue(t);
                self.inflight.insert((node, t.id), packets);
            }
        }
        // NI injection: one flit per node per cycle into the local port.
        for node in 0..self.cfg.num_nodes() {
            let bufs = &mut self.bufs;
            let now = self.now;
            self.nis[node].step(now, vcs, |vc, flit| {
                let idx = Router::buf_index(node, LOCAL, vc, vcs);
                bufs[idx].push(flit).is_ok()
            });
        }
        // Routers.
        let neighbor = move |node: usize, p: Port| Self::neighbor(cols, rows, node, p);
        let mut completions: Vec<(usize, u64)> = Vec::new();
        for r in &mut self.routers {
            for d in r.step(&mut self.bufs, &neighbor) {
                let f = d.flit;
                if f.kind == FlitKind::Head {
                    self.meter.record(self.now, u64::from(f.payload));
                }
                if f.kind == FlitKind::Tail {
                    self.packets_delivered += 1;
                    self.latency.record(self.now.saturating_sub(f.injected_at));
                    let key = (f.src, f.transfer);
                    let left = self
                        .inflight
                        .get_mut(&key)
                        .expect("tail of a tracked transfer");
                    *left -= 1;
                    if *left == 0 {
                        self.inflight.remove(&key);
                        self.transfers_completed += 1;
                        completions.push(key);
                    }
                }
            }
        }
        for (src, id) in completions {
            source.on_complete(src, id, self.now);
        }
        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{Transfer, TransferKind};

    struct OneEach {
        issued: Vec<bool>,
        completed: usize,
        bytes: u64,
    }

    impl OneEach {
        fn new(n: usize, bytes: u64) -> Self {
            Self {
                issued: vec![false; n],
                completed: 0,
                bytes,
            }
        }
    }

    impl TrafficSource for OneEach {
        fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
            if self.issued[master] {
                return None;
            }
            self.issued[master] = true;
            Some(Transfer {
                id: master as u64,
                dst: (master + 5) % self.issued.len(),
                offset: 0,
                bytes: self.bytes,
                kind: TransferKind::Write,
            })
        }

        fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
            self.completed += 1;
        }

        fn is_done(&self) -> bool {
            self.completed == self.issued.len()
        }
    }

    #[test]
    fn all_transfers_deliver_exact_payload() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let mut src = OneEach::new(16, 100);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert_eq!(report.payload_bytes, 16 * 100);
        assert!(sim.is_drained());
        assert_eq!(report.stop_reason, StopReason::Drained);
        assert_eq!(report.transfers_completed, 16);
        // 100 B at 4 B/packet = 25 packets per transfer.
        assert_eq!(sim.packets_delivered(), 16 * 25);
    }

    #[test]
    fn high_performance_config_also_drains() {
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_high_performance());
        let mut src = OneEach::new(16, 64);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert_eq!(report.payload_bytes, 16 * 64);
    }

    #[test]
    fn packet_latency_scales_with_distance() {
        // Two runs on a 4×4: 1-hop vs 6-hop transfers.
        struct Fixed {
            dst: usize,
            sent: bool,
            done: bool,
        }
        impl TrafficSource for Fixed {
            fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
                if master != 0 || self.sent {
                    return None;
                }
                self.sent = true;
                Some(Transfer {
                    id: 1,
                    dst: self.dst,
                    offset: 0,
                    bytes: 4,
                    kind: TransferKind::Write,
                })
            }
            fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let mut near = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let near_report = near.run(
            &mut Fixed {
                dst: 1,
                sent: false,
                done: false,
            },
            10_000,
            0,
        );
        let mut far = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let far_report = far.run(
            &mut Fixed {
                dst: 15,
                sent: false,
                done: false,
            },
            10_000,
            0,
        );
        assert!(
            far_report.mean_latency > near_report.mean_latency + 4.0,
            "far {} vs near {}",
            far_report.mean_latency,
            near_report.mean_latency
        );
    }

    #[test]
    fn serialization_makes_big_transfers_slow() {
        // 1 KiB = 256 packets of 8 flits: at one flit per cycle on the
        // local link, at least 2048 cycles — the protocol-translation tax.
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let mut src = OneEach::new(16, 1024);
        let report = sim.run(&mut src, 1_000_000, 0);
        assert!(report.cycles >= 2048, "only {} cycles", report.cycles);
    }

    #[test]
    fn idealized_payload_packing_multiplies_throughput() {
        // Ablation: an NI that packs payload into every non-header flit
        // (28 B per 8-flit packet) moves the same transfer volume with 7x
        // fewer packets, so the same transfers complete in ~7x fewer
        // cycles.
        let run = |payload: u32| {
            let cfg = PacketNocConfig {
                payload_per_packet: payload,
                ..PacketNocConfig::noxim_high_performance()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = OneEach::new(16, 2800);
            sim.run(&mut src, 3_000_000, 0).cycles
        };
        let word_granular = run(4);
        let packed = run(28);
        assert!(
            word_granular > 4 * packed,
            "word-granular {word_granular} vs packed {packed} cycles"
        );
    }

    #[test]
    fn wormhole_throughput_bounded_by_link_rate() {
        // 16 nodes × 1 flit/cycle injection is the hard ceiling; delivered
        // payload can never exceed payload_per_packet/packet_flits of it.
        let cfg = PacketNocConfig::noxim_high_performance();
        let ppf = f64::from(cfg.payload_per_packet) / f64::from(cfg.packet_flits);
        let mut sim = PacketNocSim::new(cfg);
        let mut src = OneEach::new(16, 10_000);
        let report = sim.run(&mut src, 50_000, 0);
        let bytes_per_cycle = report.payload_bytes as f64 / report.cycles as f64;
        assert!(
            bytes_per_cycle <= 16.0 * ppf + 1e-9,
            "{bytes_per_cycle} B/cycle exceeds the serialization ceiling"
        );
    }

    #[test]
    fn ni_queue_cap_bounds_backlog_without_changing_results() {
        let run = |cap: usize| {
            let cfg = PacketNocConfig {
                ni_queue_cap: cap,
                ..PacketNocConfig::noxim_compact()
            };
            let mut sim = PacketNocSim::new(cfg);
            let mut src = traffic::UniformRandom::new(traffic::UniformConfig {
                masters: 16,
                slaves: (0..16).collect(),
                load: 1.0,
                bytes_per_cycle: 4.0,
                max_transfer: 100,
                read_fraction: 0.5,
                region_size: 1 << 24,
                seed: 5,
            });
            let r = sim.run(&mut src, 10_000, 2_000);
            let backlog: usize = sim.nis.iter().map(NetworkInterface::queued).max().unwrap();
            (r.payload_bytes, sim.packets_delivered(), backlog)
        };
        // The cap only defers polling of the open-loop source, so delivered
        // traffic is identical; only the retained backlog differs.
        let (bytes_small, packets_small, backlog_small) = run(2);
        let (bytes_big, packets_big, _) = run(1 << 32);
        assert_eq!((bytes_small, packets_small), (bytes_big, packets_big));
        assert!(backlog_small <= 2, "backlog {backlog_small} exceeds cap");
    }

    #[test]
    fn self_traffic_delivered_locally() {
        struct SelfSend(bool, bool);
        impl TrafficSource for SelfSend {
            fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
                if master != 3 || self.0 {
                    return None;
                }
                self.0 = true;
                Some(Transfer {
                    id: 0,
                    dst: 3,
                    offset: 0,
                    bytes: 8,
                    kind: TransferKind::Write,
                })
            }
            fn on_complete(&mut self, _m: usize, _id: u64, _now: Cycle) {
                self.1 = true;
            }
            fn is_done(&self) -> bool {
                self.1
            }
        }
        let mut sim = PacketNocSim::new(PacketNocConfig::noxim_compact());
        let report = sim.run(&mut SelfSend(false, false), 10_000, 0);
        assert_eq!(report.payload_bytes, 8);
    }
}
