//! # packetnoc — a classical packet-based wormhole NoC (baseline)
//!
//! The PATRONoC paper sets its baseline with Noxim, "an open, extensible and
//! cycle-accurate network on chip simulator": a 4×4 mesh with default XY
//! routing, 32-bit flits and eight flits per packet, in two configurations —
//! a compact one (1 virtual channel, 4-flit buffers) and a high-performance
//! one (4 VCs, 32-flit buffers) (§IV-A, Fig. 4).
//!
//! This crate is that baseline, rebuilt from first principles (Noxim is
//! C++/SystemC and unavailable offline):
//!
//! * [`router`] — input-buffered wormhole routers with virtual channels,
//!   credit-accurate backpressure, XY routing and round-robin switch
//!   allocation;
//! * [`ni`] — the network interface that performs the **protocol
//!   translation** classical NoCs need at every endpoint: DMA transfers are
//!   chopped into fixed-length packets (default: eight 32-bit flits carrying
//!   one bus word of payload — the word-granular transaction framing that
//!   packet-based serial protocols impose, and the overhead the paper's
//!   whole argument is about);
//! * [`engine`] — the mesh simulator driven by the same
//!   [`traffic::TrafficSource`] stimulus as the PATRONoC engine, so both
//!   NoCs see byte-identical workloads.
//!
//! ```
//! use packetnoc::{PacketNocConfig, PacketNocSim};
//! use traffic::{UniformConfig, UniformRandom};
//!
//! let cfg = PacketNocConfig::noxim_high_performance(); // 4 VCs, 32 flits
//! let mut sim = PacketNocSim::new(cfg);
//! let mut src = UniformRandom::new(UniformConfig {
//!     masters: 16,
//!     slaves: (0..16).collect(),
//!     load: 0.5,
//!     bytes_per_cycle: 4.0,
//!     max_transfer: 32,
//!     read_fraction: 0.0,
//!     region_size: 1 << 20,
//!     seed: 3,
//! });
//! let report = sim.run(&mut src, 10_000, 2_000);
//! assert!(report.throughput_gib_s > 0.0);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod engine;
pub mod ni;
pub mod router;
pub mod shard;
pub(crate) mod snapcodec;
pub mod txn;

pub use config::PacketNocConfig;
pub use engine::PacketNocSim;
pub use router::{Flit, FlitKind};
pub use simkit::{SimReport, StopReason};
pub use txn::{TxHandle, TxRecord};
