//! Property-based tests of the packet baseline: random transfer batches
//! under random router configurations always drain, deliver exact payload,
//! and complete every transfer exactly once.

use packetnoc::{PacketNocConfig, PacketNocSim};
use proptest::prelude::*;
use simkit::Cycle;
use std::collections::VecDeque;
use traffic::{TrafficSource, Transfer, TransferKind};

struct Scripted {
    queues: Vec<VecDeque<Transfer>>,
    completed: Vec<u64>,
    total: usize,
}

impl Scripted {
    fn new(n_nodes: usize, raw: &[(usize, usize, u64)]) -> Self {
        let mut queues = vec![VecDeque::new(); n_nodes];
        for (i, &(m, d, bytes)) in raw.iter().enumerate() {
            queues[m % n_nodes].push_back(Transfer {
                id: i as u64,
                dst: d % n_nodes,
                offset: 0,
                bytes,
                kind: TransferKind::Write,
            });
        }
        Self {
            queues,
            completed: Vec::new(),
            total: raw.len(),
        }
    }
}

impl TrafficSource for Scripted {
    fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
        self.queues.get_mut(master)?.pop_front()
    }

    fn on_complete(&mut self, _master: usize, id: u64, _now: Cycle) {
        self.completed.push(id);
    }

    fn is_done(&self) -> bool {
        self.completed.len() == self.total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_batches_drain_and_conserve(
        vcs in 1usize..=4,
        buf in 2usize..=16,
        raw in prop::collection::vec((0usize..16, 0usize..16, 1u64..3000), 1..30),
    ) {
        let cfg = PacketNocConfig {
            vcs,
            buf_flits: buf,
            ..PacketNocConfig::noxim_compact()
        };
        let mut sim = PacketNocSim::new(cfg);
        let expected: u64 = raw.iter().map(|&(_, _, b)| b).sum();
        let mut src = Scripted::new(16, &raw);
        let report = sim.run(&mut src, 10_000_000, 0);
        prop_assert!(sim.is_drained(), "network did not drain");
        prop_assert_eq!(report.payload_bytes, expected);
        // Exactly-once completion.
        let mut ids = src.completed.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), raw.len());
    }

    #[test]
    fn packet_accounting_matches_framing(
        payload in 1u32..=28,
        bytes in 1u64..5000,
    ) {
        let cfg = PacketNocConfig {
            payload_per_packet: payload,
            ..PacketNocConfig::noxim_compact()
        };
        let expect_packets = bytes.div_ceil(u64::from(payload)).max(1);
        let mut sim = PacketNocSim::new(cfg);
        let mut src = Scripted::new(16, &[(0, 5, bytes)]);
        let report = sim.run(&mut src, 10_000_000, 0);
        prop_assert_eq!(sim.packets_delivered(), expect_packets);
        prop_assert_eq!(report.payload_bytes, bytes);
    }
}
