//! Transaction IDs and ID remapping.
//!
//! AXI orders transactions *per ID*: two transactions with the same ID from
//! the same master must complete in order, while different IDs are
//! unordered. A crosspoint must therefore (a) keep enough distinct IDs on
//! its downstream ports and (b) remap incoming IDs so its ports stay
//! isomorphic (paper §II: "The XP consists of a configurable crossbar switch
//! and ID remappers to ensure isomorphic XP ports").
//!
//! [`IdRemapper`] models the `axi_id_remap` block of the pulp-platform AXI
//! library: a table of `2^IW` output IDs with a free list; an input
//! `(port, id)` pair that already has in-flight transactions reuses its slot
//! (preserving intra-ID ordering), a new pair allocates a free slot, and the
//! remapper back-pressures when no slot is free.

use std::collections::BTreeMap;
use std::fmt;

/// An AXI transaction ID (wire value, at most 16 bits in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AxiId(pub u16);

impl fmt::Display for AxiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// A key identifying the *source* of a transaction at a remapper: which
/// upstream port it arrived on and which wire ID it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceKey {
    /// Upstream (slave-side) port index.
    pub port: u8,
    /// Wire ID on that port.
    pub id: AxiId,
}

#[derive(Debug, Clone)]
struct Slot {
    key: SourceKey,
    inflight: u32,
}

/// An ID remap table with `2^IW` downstream IDs.
///
/// # Examples
///
/// ```
/// use axi::id::{AxiId, IdRemapper, SourceKey};
///
/// let mut remap = IdRemapper::new(2); // IW = 2 → 4 downstream IDs
/// let key = SourceKey { port: 0, id: AxiId(9) };
/// let out = remap.acquire(key).expect("table has free slots");
/// assert!(out.0 < 4);
/// // Same source reuses the same downstream ID (ordering preserved):
/// assert_eq!(remap.acquire(key), Some(out));
/// remap.release(out);
/// remap.release(out);
/// ```
#[derive(Debug, Clone)]
pub struct IdRemapper {
    slots: Vec<Option<Slot>>,
    by_key: BTreeMap<SourceKey, u16>,
    free: Vec<u16>,
}

impl IdRemapper {
    /// Creates a remapper with `2^id_width` downstream IDs.
    ///
    /// # Panics
    ///
    /// Panics if `id_width` is outside `1..=16`.
    #[must_use]
    pub fn new(id_width: u32) -> Self {
        assert!((1..=16).contains(&id_width), "id width out of range");
        let n = 1usize << id_width;
        Self {
            slots: vec![None; n],
            by_key: BTreeMap::new(),
            free: (0..n as u16).rev().collect(),
        }
    }

    /// Number of downstream IDs.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Downstream IDs currently in use.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether a *new* source key could be admitted this cycle.
    #[must_use]
    pub fn has_free_slot(&self) -> bool {
        !self.free.is_empty()
    }

    /// Whether `key` can acquire an ID right now (existing slot or free one).
    #[must_use]
    pub fn can_acquire(&self, key: SourceKey) -> bool {
        self.by_key.contains_key(&key) || self.has_free_slot()
    }

    /// Acquires (or reuses) a downstream ID for `key`, incrementing its
    /// in-flight count. Returns `None` when the table is exhausted — the
    /// remapper back-pressures the request channel in that case.
    pub fn acquire(&mut self, key: SourceKey) -> Option<AxiId> {
        if let Some(&slot_idx) = self.by_key.get(&key) {
            let slot = self.slots[slot_idx as usize]
                .as_mut()
                .expect("by_key points at a live slot");
            slot.inflight += 1;
            return Some(AxiId(slot_idx));
        }
        let slot_idx = self.free.pop()?;
        self.slots[slot_idx as usize] = Some(Slot { key, inflight: 1 });
        self.by_key.insert(key, slot_idx);
        Some(AxiId(slot_idx))
    }

    /// Looks up the source key for a downstream ID (used to route responses
    /// back to the right upstream port).
    #[must_use]
    pub fn source_of(&self, downstream: AxiId) -> Option<SourceKey> {
        self.slots
            .get(downstream.0 as usize)?
            .as_ref()
            .map(|s| s.key)
    }

    /// Exports the remap table's dynamic state for checkpointing:
    /// `(slots, free)` where `slots[i]` is the live `(key, inflight)` of
    /// downstream ID `i` and `free` is the free list **verbatim** — its
    /// LIFO order decides which downstream ID the next new source key
    /// gets, so it is behaviorally significant state, not bookkeeping.
    #[must_use]
    pub fn export(&self) -> (Vec<Option<(SourceKey, u32)>>, Vec<u16>) {
        (
            self.slots
                .iter()
                .map(|s| s.as_ref().map(|s| (s.key, s.inflight)))
                .collect(),
            self.free.clone(),
        )
    }

    /// Rebuilds a remapper from [`export`](Self::export)ed state,
    /// validating the structural invariants before constructing anything:
    /// capacity is a power of two in `2..=65536`, the free list holds
    /// exactly the empty slots (each once, in range), live slots carry a
    /// non-zero in-flight count, and no source key occupies two slots.
    /// The key index is rebuilt from the slots.
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn from_parts(
        slots: Vec<Option<(SourceKey, u32)>>,
        free: Vec<u16>,
    ) -> Result<Self, &'static str> {
        let n = slots.len();
        if !(2..=65_536).contains(&n) || !n.is_power_of_two() {
            return Err("remapper capacity not a power of two in range");
        }
        let mut by_key = BTreeMap::new();
        let mut occupied = 0usize;
        for (i, slot) in slots.iter().enumerate() {
            if let Some((key, inflight)) = slot {
                if *inflight == 0 {
                    return Err("remapper slot with zero in-flight count");
                }
                if by_key.insert(*key, i as u16).is_some() {
                    return Err("remapper source key in two slots");
                }
                occupied += 1;
            }
        }
        if free.len() != n - occupied {
            return Err("remapper free list size mismatch");
        }
        let mut seen = vec![false; n];
        for &idx in &free {
            let i = idx as usize;
            if i >= n || slots[i].is_some() || seen[i] {
                return Err("remapper free list entry invalid");
            }
            seen[i] = true;
        }
        Ok(Self {
            slots: slots
                .into_iter()
                .map(|s| s.map(|(key, inflight)| Slot { key, inflight }))
                .collect(),
            by_key,
            free,
        })
    }

    /// Releases one in-flight transaction on `downstream`; frees the slot
    /// when the count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if `downstream` has no in-flight transactions — that always
    /// indicates a protocol bug in the caller.
    pub fn release(&mut self, downstream: AxiId) {
        let slot_ref = &mut self.slots[downstream.0 as usize];
        let slot = slot_ref.as_mut().expect("release of unused id");
        slot.inflight -= 1;
        if slot.inflight == 0 {
            self.by_key.remove(&slot.key);
            *slot_ref = None;
            self.free.push(downstream.0);
        }
    }
}

/// Per-ID outstanding-transaction counter used at master endpoints and demux
/// stages to enforce AXI's same-ID ordering rule: a master must not issue a
/// transaction with an ID that is in flight towards a *different*
/// destination (the interconnect could otherwise reorder them).
#[derive(Debug, Clone, Default)]
pub struct OrderingGuard {
    /// id → (destination, outstanding count)
    inflight: BTreeMap<AxiId, (usize, u32)>,
}

impl OrderingGuard {
    /// Creates an empty guard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a transaction with `id` may be issued towards `dest` now.
    #[must_use]
    pub fn may_issue(&self, id: AxiId, dest: usize) -> bool {
        match self.inflight.get(&id) {
            None => true,
            Some(&(d, _)) => d == dest,
        }
    }

    /// Records an issued transaction.
    ///
    /// # Panics
    ///
    /// Panics if the issue violates [`may_issue`](Self::may_issue).
    pub fn issue(&mut self, id: AxiId, dest: usize) {
        let entry = self.inflight.entry(id).or_insert((dest, 0));
        assert_eq!(
            entry.0, dest,
            "same-ID transaction to different destination"
        );
        entry.1 += 1;
    }

    /// Records a completed transaction.
    ///
    /// # Panics
    ///
    /// Panics on completion of a transaction that was never issued.
    pub fn complete(&mut self, id: AxiId) {
        let entry = self
            .inflight
            .get_mut(&id)
            .expect("completion without issue");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.inflight.remove(&id);
        }
    }

    /// Total outstanding transactions across all IDs.
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.inflight.values().map(|&(_, n)| n).sum()
    }

    /// The in-flight entries as `(id, destination, count)` in ascending
    /// ID order (the map's canonical order), for checkpointing.
    #[must_use]
    pub fn entries(&self) -> Vec<(AxiId, usize, u32)> {
        self.inflight
            .iter()
            .map(|(&id, &(dest, n))| (id, dest, n))
            .collect()
    }

    /// Rebuilds a guard from [`entries`](Self::entries), rejecting
    /// duplicate IDs and zero counts.
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn from_entries(entries: &[(AxiId, usize, u32)]) -> Result<Self, &'static str> {
        let mut inflight = BTreeMap::new();
        for &(id, dest, n) in entries {
            if n == 0 {
                return Err("ordering guard entry with zero count");
            }
            if inflight.insert(id, (dest, n)).is_some() {
                return Err("ordering guard duplicate id");
            }
        }
        Ok(Self { inflight })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(port: u8, id: u16) -> SourceKey {
        SourceKey {
            port,
            id: AxiId(id),
        }
    }

    #[test]
    fn same_key_reuses_slot() {
        let mut r = IdRemapper::new(2);
        let a = r.acquire(key(0, 5)).unwrap();
        let b = r.acquire(key(0, 5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.in_use(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_ids() {
        let mut r = IdRemapper::new(2);
        let a = r.acquire(key(0, 1)).unwrap();
        let b = r.acquire(key(1, 1)).unwrap();
        let c = r.acquire(key(0, 2)).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn exhaustion_backpressures() {
        let mut r = IdRemapper::new(1); // 2 slots
        assert!(r.acquire(key(0, 0)).is_some());
        assert!(r.acquire(key(0, 1)).is_some());
        assert!(!r.has_free_slot());
        assert_eq!(r.acquire(key(0, 2)), None);
        // But an existing key still goes through.
        assert!(r.can_acquire(key(0, 1)));
        assert!(r.acquire(key(0, 1)).is_some());
    }

    #[test]
    fn release_frees_slot_only_at_zero() {
        let mut r = IdRemapper::new(1);
        let a = r.acquire(key(0, 7)).unwrap();
        let _ = r.acquire(key(0, 7)).unwrap();
        r.release(a);
        assert_eq!(r.in_use(), 1); // still one in flight
        r.release(a);
        assert_eq!(r.in_use(), 0);
        assert!(r.has_free_slot());
    }

    #[test]
    fn source_lookup_roundtrip() {
        let mut r = IdRemapper::new(3);
        let k = key(2, 9);
        let out = r.acquire(k).unwrap();
        assert_eq!(r.source_of(out), Some(k));
        r.release(out);
        assert_eq!(r.source_of(out), None);
    }

    #[test]
    #[should_panic(expected = "release of unused id")]
    fn release_unused_panics() {
        let mut r = IdRemapper::new(1);
        r.release(AxiId(0));
    }

    #[test]
    fn slot_reuse_after_release() {
        let mut r = IdRemapper::new(1);
        let a = r.acquire(key(0, 0)).unwrap();
        let b = r.acquire(key(0, 1)).unwrap();
        r.release(a);
        r.release(b);
        // All four acquires across both rounds succeed with only 2 slots.
        assert!(r.acquire(key(1, 0)).is_some());
        assert!(r.acquire(key(1, 1)).is_some());
    }

    #[test]
    fn remapper_export_round_trip_preserves_free_order() {
        let mut r = IdRemapper::new(2);
        let a = r.acquire(key(0, 1)).unwrap();
        let _b = r.acquire(key(1, 1)).unwrap();
        let _c = r.acquire(key(0, 2)).unwrap();
        r.release(a); // free list now ends with a's slot (LIFO)
        let (slots, free) = r.export();
        let mut restored = IdRemapper::from_parts(slots, free).unwrap();
        // The next fresh acquire must land on the same downstream ID in
        // both the original and the restored remapper.
        assert_eq!(r.acquire(key(3, 3)), restored.acquire(key(3, 3)));
        assert_eq!(r.in_use(), restored.in_use());
        // Existing keys still resolve identically after the rebuild.
        assert_eq!(r.acquire(key(1, 1)), restored.acquire(key(1, 1)));
    }

    #[test]
    fn remapper_from_parts_rejects_structural_corruption() {
        let ok_slots = vec![Some((key(0, 1), 1u32)), None];
        assert!(IdRemapper::from_parts(ok_slots.clone(), vec![1]).is_ok());
        // Free list pointing at a live slot.
        assert!(IdRemapper::from_parts(ok_slots.clone(), vec![0]).is_err());
        // Free list wrong size.
        assert!(IdRemapper::from_parts(ok_slots.clone(), vec![]).is_err());
        // Duplicate free entry.
        assert!(IdRemapper::from_parts(
            vec![Some((key(0, 1), 1)), None, None, None],
            vec![1, 1, 2]
        )
        .is_err());
        // Zero in-flight count.
        assert!(IdRemapper::from_parts(vec![Some((key(0, 1), 0)), None], vec![1]).is_err());
        // Duplicate source key.
        assert!(
            IdRemapper::from_parts(vec![Some((key(0, 1), 1)), Some((key(0, 1), 1))], vec![])
                .is_err()
        );
        // Non-power-of-two capacity.
        assert!(IdRemapper::from_parts(vec![None, None, None], vec![0, 1, 2]).is_err());
    }

    #[test]
    fn ordering_guard_entries_round_trip() {
        let mut g = OrderingGuard::new();
        g.issue(AxiId(4), 2);
        g.issue(AxiId(4), 2);
        g.issue(AxiId(1), 3);
        let restored = OrderingGuard::from_entries(&g.entries()).unwrap();
        assert_eq!(restored.entries(), g.entries());
        assert_eq!(restored.outstanding(), 3);
        assert!(!restored.may_issue(AxiId(4), 0));
        assert!(OrderingGuard::from_entries(&[(AxiId(1), 0, 0)]).is_err());
        assert!(OrderingGuard::from_entries(&[(AxiId(1), 0, 1), (AxiId(1), 1, 1)]).is_err());
    }

    #[test]
    fn ordering_guard_blocks_cross_destination() {
        let mut g = OrderingGuard::new();
        assert!(g.may_issue(AxiId(3), 0));
        g.issue(AxiId(3), 0);
        assert!(g.may_issue(AxiId(3), 0));
        assert!(!g.may_issue(AxiId(3), 1));
        assert!(g.may_issue(AxiId(4), 1)); // different ID is free
        g.complete(AxiId(3));
        assert!(g.may_issue(AxiId(3), 1)); // drained → new destination ok
    }

    #[test]
    fn ordering_guard_counts() {
        let mut g = OrderingGuard::new();
        g.issue(AxiId(0), 2);
        g.issue(AxiId(0), 2);
        g.issue(AxiId(1), 3);
        assert_eq!(g.outstanding(), 3);
        g.complete(AxiId(0));
        assert_eq!(g.outstanding(), 2);
    }
}
