//! Address maps and region decode.
//!
//! Every endpoint (memory or I/O tile) owns a region of the global address
//! space; "an automated script generates the address-based routing table for
//! each XP which is used for routing the AXI transactions based on their
//! destination address" (paper §II). [`AddressMap`] is that script's input:
//! it decodes an address to an endpoint index, and the routing-table
//! generator in the `patronoc` crate turns endpoint indices into output
//! ports per crosspoint.

use std::fmt;

/// A half-open address region `[start, end)` owned by one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub start: u64,
    /// One past the last byte of the region.
    pub end: u64,
    /// Endpoint (slave) index owning the region.
    pub endpoint: usize,
}

impl Region {
    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        (self.start..self.end).contains(&addr)
    }

    /// Region size in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Errors from [`AddressMap`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrMapError {
    /// Two regions overlap; decode would be ambiguous.
    Overlap {
        /// Index of the first region in insertion order.
        first: usize,
        /// Index of the overlapping region in insertion order.
        second: usize,
    },
    /// A region with `start >= end` was supplied.
    EmptyRegion {
        /// Index of the offending region.
        index: usize,
    },
}

impl fmt::Display for AddrMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overlap { first, second } => {
                write!(f, "address regions {first} and {second} overlap")
            }
            Self::EmptyRegion { index } => write!(f, "address region {index} is empty"),
        }
    }
}

impl std::error::Error for AddrMapError {}

/// A set of non-overlapping address regions, decodable to endpoint indices.
///
/// # Examples
///
/// ```
/// use axi::AddressMap;
///
/// // 16 endpoints with 16 MiB each (the 4×4 mesh default).
/// let map = AddressMap::uniform(16, 16 << 20, 0x8000_0000);
/// assert_eq!(map.decode(0x8000_0000), Some(0));
/// assert_eq!(map.decode(0x8100_0000), Some(1));
/// assert_eq!(map.decode(0x0), None); // outside the map → error slave
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    /// Regions sorted by start address.
    regions: Vec<Region>,
}

impl AddressMap {
    /// Builds a map from explicit regions.
    ///
    /// # Errors
    ///
    /// Returns [`AddrMapError`] when regions overlap or are empty.
    pub fn new(mut regions: Vec<Region>) -> Result<Self, AddrMapError> {
        for (i, r) in regions.iter().enumerate() {
            if r.is_empty() {
                return Err(AddrMapError::EmptyRegion { index: i });
            }
        }
        // Detect overlap on the sorted view, reporting insertion indices.
        let mut order: Vec<usize> = (0..regions.len()).collect();
        order.sort_by_key(|&i| regions[i].start);
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            if regions[a].end > regions[b].start {
                return Err(AddrMapError::Overlap {
                    first: a.min(b),
                    second: a.max(b),
                });
            }
        }
        regions.sort_by_key(|r| r.start);
        Ok(Self { regions })
    }

    /// Builds a uniform map: `n` endpoints, each owning `region_size` bytes,
    /// starting at `base`. Endpoint `i` owns
    /// `[base + i·region_size, base + (i+1)·region_size)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `region_size == 0`.
    #[must_use]
    pub fn uniform(n: usize, region_size: u64, base: u64) -> Self {
        assert!(n > 0 && region_size > 0, "need endpoints and a region size");
        let regions = (0..n)
            .map(|i| Region {
                start: base + i as u64 * region_size,
                end: base + (i as u64 + 1) * region_size,
                endpoint: i,
            })
            .collect();
        Self::new(regions).expect("uniform regions never overlap")
    }

    /// Decodes an address to its owning endpoint, or `None` when the address
    /// is unmapped (an AXI interconnect routes those to the error slave,
    /// which responds with `DECERR`).
    #[must_use]
    pub fn decode(&self, addr: u64) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.end <= addr);
        self.regions
            .get(idx)
            .filter(|r| r.contains(addr))
            .map(|r| r.endpoint)
    }

    /// The region owned by endpoint `endpoint`, if any.
    #[must_use]
    pub fn region_of(&self, endpoint: usize) -> Option<Region> {
        self.regions
            .iter()
            .copied()
            .find(|r| r.endpoint == endpoint)
    }

    /// Base address of an endpoint's region.
    #[must_use]
    pub fn base_of(&self, endpoint: usize) -> Option<u64> {
        self.region_of(endpoint).map(|r| r.start)
    }

    /// All regions, sorted by start address.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the map has no regions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_decode() {
        let map = AddressMap::uniform(4, 0x1000, 0x8000);
        assert_eq!(map.decode(0x8000), Some(0));
        assert_eq!(map.decode(0x8FFF), Some(0));
        assert_eq!(map.decode(0x9000), Some(1));
        assert_eq!(map.decode(0xBFFF), Some(3));
        assert_eq!(map.decode(0xC000), None);
        assert_eq!(map.decode(0x7FFF), None);
    }

    #[test]
    fn overlap_rejected() {
        let err = AddressMap::new(vec![
            Region {
                start: 0,
                end: 100,
                endpoint: 0,
            },
            Region {
                start: 50,
                end: 150,
                endpoint: 1,
            },
        ])
        .unwrap_err();
        assert_eq!(
            err,
            AddrMapError::Overlap {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn empty_region_rejected() {
        let err = AddressMap::new(vec![Region {
            start: 10,
            end: 10,
            endpoint: 0,
        }])
        .unwrap_err();
        assert_eq!(err, AddrMapError::EmptyRegion { index: 0 });
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let map = AddressMap::new(vec![
            Region {
                start: 0x2000,
                end: 0x3000,
                endpoint: 7,
            },
            Region {
                start: 0x1000,
                end: 0x2000,
                endpoint: 3,
            },
        ])
        .unwrap();
        assert_eq!(map.decode(0x1800), Some(3));
        assert_eq!(map.decode(0x2800), Some(7));
    }

    #[test]
    fn region_of_and_base_of() {
        let map = AddressMap::uniform(16, 1 << 24, 0x8000_0000);
        assert_eq!(map.base_of(5), Some(0x8000_0000 + 5 * (1 << 24)));
        assert_eq!(map.region_of(15).unwrap().len(), 1 << 24);
        assert_eq!(map.base_of(16), None);
    }

    #[test]
    fn adjacent_regions_do_not_overlap() {
        assert!(AddressMap::new(vec![
            Region {
                start: 0,
                end: 10,
                endpoint: 0
            },
            Region {
                start: 10,
                end: 20,
                endpoint: 1
            },
        ])
        .is_ok());
    }
}
