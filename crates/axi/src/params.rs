//! Design-time AXI/NoC parameters (paper Table I) with validation.

use std::fmt;

/// Errors produced when validating an [`AxiParams`] configuration against
/// the ranges of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Address width must be 32 or 64 bits ("Arch. dependent").
    AddrWidth(u32),
    /// Data width must be a power of two between 8 and 1024 bits.
    DataWidth(u32),
    /// ID width must be between 1 and 16 bits.
    IdWidth(u32),
    /// Maximum outstanding transactions must be between 1 and 128.
    MaxOutstanding(u32),
    /// Number of masters/slaves must be between 1 and the endpoint capacity
    /// of the topology.
    EndpointCount {
        /// What was requested.
        requested: usize,
        /// The topology's capacity (N×M for the default mesh).
        capacity: usize,
    },
    /// A testbench knob that must be non-zero was zero (e.g. link register
    /// stages, region size, DMA descriptor-queue depth).
    ZeroParameter(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AddrWidth(w) => {
                write!(f, "address width {w} unsupported (expected 32 or 64)")
            }
            Self::DataWidth(w) => write!(
                f,
                "data width {w} unsupported (expected a power of two in 8..=1024)"
            ),
            Self::IdWidth(w) => write!(f, "id width {w} out of range 1..=16"),
            Self::MaxOutstanding(m) => {
                write!(f, "max outstanding transactions {m} out of range 1..=128")
            }
            Self::EndpointCount {
                requested,
                capacity,
            } => write!(
                f,
                "endpoint count {requested} exceeds topology capacity {capacity}"
            ),
            Self::ZeroParameter(name) => write!(f, "{name} must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The AXI interface parameters of one NoC instance.
///
/// Mirrors the paper's `AXI_AW_DW_IW` configuration naming (e.g.
/// `AXI_32_512_4` is `AxiParams::new(32, 512, 4, mot)`), plus the maximum
/// number of outstanding transactions (MOT).
///
/// # Examples
///
/// ```
/// use axi::AxiParams;
///
/// // The paper's "wide NoC": AW=32, DW=512, IW=4, MOT=8.
/// let wide = AxiParams::new(32, 512, 4, 8)?;
/// assert_eq!(wide.bytes_per_beat(), 64);
/// assert_eq!(wide.unique_ids(), 16);
/// # Ok::<(), axi::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxiParams {
    addr_width: u32,
    data_width: u32,
    id_width: u32,
    max_outstanding: u32,
}

impl AxiParams {
    /// Creates and validates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is outside Table I's range.
    pub fn new(
        addr_width: u32,
        data_width: u32,
        id_width: u32,
        max_outstanding: u32,
    ) -> Result<Self, ConfigError> {
        if addr_width != 32 && addr_width != 64 {
            return Err(ConfigError::AddrWidth(addr_width));
        }
        if !(8..=1024).contains(&data_width) || !data_width.is_power_of_two() {
            return Err(ConfigError::DataWidth(data_width));
        }
        if !(1..=16).contains(&id_width) {
            return Err(ConfigError::IdWidth(id_width));
        }
        if !(1..=128).contains(&max_outstanding) {
            return Err(ConfigError::MaxOutstanding(max_outstanding));
        }
        Ok(Self {
            addr_width,
            data_width,
            id_width,
            max_outstanding,
        })
    }

    /// The paper's "slim NoC" endpoint interface: `AXI_32_32_4`, MOT = 8.
    #[must_use]
    pub fn slim() -> Self {
        Self::new(32, 32, 4, 8).expect("slim parameters are valid")
    }

    /// The paper's "wide NoC" endpoint interface: `AXI_32_512_4`, MOT = 8.
    #[must_use]
    pub fn wide() -> Self {
        Self::new(32, 512, 4, 8).expect("wide parameters are valid")
    }

    /// Address width in bits (32 or 64).
    #[must_use]
    pub fn addr_width(&self) -> u32 {
        self.addr_width
    }

    /// Data width in bits (8..=1024, power of two).
    #[must_use]
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// ID width in bits (1..=16).
    #[must_use]
    pub fn id_width(&self) -> u32 {
        self.id_width
    }

    /// Maximum outstanding transactions per master (1..=128).
    #[must_use]
    pub fn max_outstanding(&self) -> u32 {
        self.max_outstanding
    }

    /// Bytes transported by one data beat (`DW / 8`).
    #[must_use]
    pub fn bytes_per_beat(&self) -> u64 {
        u64::from(self.data_width / 8)
    }

    /// Number of distinct transaction IDs (`2^IW`).
    #[must_use]
    pub fn unique_ids(&self) -> u64 {
        1u64 << self.id_width
    }

    /// Returns a copy with a different maximum outstanding count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::MaxOutstanding`] when out of range.
    pub fn with_max_outstanding(self, mot: u32) -> Result<Self, ConfigError> {
        Self::new(self.addr_width, self.data_width, self.id_width, mot)
    }

    /// The paper's configuration label, e.g. `AXI_32_512_4`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "AXI_{}_{}_{}",
            self.addr_width, self.data_width, self.id_width
        )
    }
}

impl fmt::Display for AxiParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (MOT={})", self.label(), self.max_outstanding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_corners_accepted() {
        // Smallest and largest values of every Table I row.
        assert!(AxiParams::new(32, 8, 1, 1).is_ok());
        assert!(AxiParams::new(64, 1024, 16, 128).is_ok());
    }

    #[test]
    fn rejects_bad_addr_width() {
        assert_eq!(
            AxiParams::new(48, 64, 4, 8).unwrap_err(),
            ConfigError::AddrWidth(48)
        );
    }

    #[test]
    fn rejects_bad_data_width() {
        assert!(matches!(
            AxiParams::new(32, 48, 4, 8).unwrap_err(),
            ConfigError::DataWidth(48)
        ));
        assert!(matches!(
            AxiParams::new(32, 2048, 4, 8).unwrap_err(),
            ConfigError::DataWidth(2048)
        ));
        assert!(matches!(
            AxiParams::new(32, 4, 4, 8).unwrap_err(),
            ConfigError::DataWidth(4)
        ));
    }

    #[test]
    fn rejects_bad_id_width() {
        assert!(matches!(
            AxiParams::new(32, 64, 0, 8).unwrap_err(),
            ConfigError::IdWidth(0)
        ));
        assert!(matches!(
            AxiParams::new(32, 64, 17, 8).unwrap_err(),
            ConfigError::IdWidth(17)
        ));
    }

    #[test]
    fn rejects_bad_mot() {
        assert!(matches!(
            AxiParams::new(32, 64, 4, 0).unwrap_err(),
            ConfigError::MaxOutstanding(0)
        ));
        assert!(matches!(
            AxiParams::new(32, 64, 4, 129).unwrap_err(),
            ConfigError::MaxOutstanding(129)
        ));
    }

    #[test]
    fn slim_and_wide_match_paper() {
        let slim = AxiParams::slim();
        assert_eq!(slim.data_width(), 32);
        assert_eq!(slim.bytes_per_beat(), 4);
        assert_eq!(slim.max_outstanding(), 8);
        let wide = AxiParams::wide();
        assert_eq!(wide.data_width(), 512);
        assert_eq!(wide.bytes_per_beat(), 64);
        assert_eq!(wide.label(), "AXI_32_512_4");
    }

    #[test]
    fn display_includes_mot() {
        let p = AxiParams::new(64, 128, 2, 16).unwrap();
        assert_eq!(p.to_string(), "AXI_64_128_2 (MOT=16)");
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = AxiParams::new(48, 64, 4, 8).unwrap_err().to_string();
        assert!(e.contains("48"));
        assert!(e.starts_with(char::is_lowercase));
    }
}
