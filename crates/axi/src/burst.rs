//! AXI burst descriptors and beat geometry.
//!
//! An AXI transaction transports `AxLEN + 1` data beats of `2^AxSIZE` bytes
//! each. `INCR` bursts (the only type DMA traffic uses) are limited to 256
//! beats and must not cross a 4 KiB address boundary; `WRAP` bursts are
//! limited to 2, 4, 8 or 16 beats and must start aligned to the beat size.

use crate::{BOUNDARY_4K, MAX_INCR_BEATS};
use std::fmt;

/// The AXI burst type (`AxBURST`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstType {
    /// Same address every beat (FIFO-style peripherals).
    Fixed,
    /// Incrementing addresses — the type used for all DMA/DNN traffic.
    #[default]
    Incr,
    /// Wrapping burst (cache-line fills).
    Wrap,
}

impl fmt::Display for BurstType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Fixed => "FIXED",
            Self::Incr => "INCR",
            Self::Wrap => "WRAP",
        };
        f.write_str(s)
    }
}

/// Errors from [`Burst::new`] validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstError {
    /// Beat size must be a power of two of at most 128 bytes (1024 bits).
    BeatSize(u64),
    /// Beat count out of range for the burst type.
    BeatCount {
        /// Requested beats.
        beats: u64,
        /// The burst type imposing the limit.
        burst: BurstType,
    },
    /// A WRAP burst must start aligned to the beat size.
    WrapUnaligned {
        /// Requested start address.
        addr: u64,
    },
}

impl fmt::Display for BurstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BeatSize(s) => write!(f, "beat size {s} invalid (power of two ≤ 128)"),
            Self::BeatCount { beats, burst } => {
                write!(f, "{beats} beats illegal for {burst} burst")
            }
            Self::WrapUnaligned { addr } => {
                write!(f, "wrap burst at {addr:#x} not aligned to beat size")
            }
        }
    }
}

impl std::error::Error for BurstError {}

/// One AXI burst: the content of an AW or AR request beat.
///
/// The payload accounting is *byte-accurate*: a burst may start and end
/// mid-beat (unaligned DMA), in which case the first/last beats carry fewer
/// valid bytes (modelled by byte strobes on the real bus). This matters when
/// verifying that a split transfer moves exactly the requested bytes.
///
/// # Examples
///
/// ```
/// use axi::{Burst, BurstType};
///
/// let b = Burst::new(0x80, 16, 4, BurstType::Incr)?; // 16 beats × 4 B
/// assert_eq!(b.payload_bytes(), 64);
/// assert_eq!(b.beat_addr(1), 0x84);
/// # Ok::<(), axi::burst::BurstError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Burst {
    addr: u64,
    beats: u64,
    beat_bytes: u64,
    burst: BurstType,
    /// Valid bytes in this burst (≤ beats × beat_bytes for unaligned ends).
    payload: u64,
}

impl Burst {
    /// Creates a burst of `beats` full beats of `beat_bytes` each.
    ///
    /// For `INCR`, `beats` must be 1..=256; for `FIXED`, 1..=16; for `WRAP`,
    /// one of {2, 4, 8, 16} and `addr` aligned to `beat_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`BurstError`] if the descriptor violates the AXI rules above.
    pub fn new(
        addr: u64,
        beats: u64,
        beat_bytes: u64,
        burst: BurstType,
    ) -> Result<Self, BurstError> {
        if !(1..=128).contains(&beat_bytes) || !beat_bytes.is_power_of_two() {
            return Err(BurstError::BeatSize(beat_bytes));
        }
        let legal = match burst {
            BurstType::Incr => (1..=MAX_INCR_BEATS).contains(&beats),
            BurstType::Fixed => (1..=16).contains(&beats),
            BurstType::Wrap => matches!(beats, 2 | 4 | 8 | 16),
        };
        if !legal {
            return Err(BurstError::BeatCount { beats, burst });
        }
        if burst == BurstType::Wrap && !addr.is_multiple_of(beat_bytes) {
            return Err(BurstError::WrapUnaligned { addr });
        }
        Ok(Self {
            addr,
            beats,
            beat_bytes,
            burst,
            payload: beats * beat_bytes,
        })
    }

    /// Creates an unaligned `INCR` burst covering exactly `payload` bytes
    /// starting at `addr`; the beat count is derived from the bus alignment.
    ///
    /// # Errors
    ///
    /// Returns [`BurstError::BeatCount`] if the span requires more than 256
    /// beats (the caller should have split it) and
    /// [`BurstError::BeatSize`] for an invalid bus width.
    pub fn incr_covering(addr: u64, payload: u64, beat_bytes: u64) -> Result<Self, BurstError> {
        if !(1..=128).contains(&beat_bytes) || !beat_bytes.is_power_of_two() {
            return Err(BurstError::BeatSize(beat_bytes));
        }
        let offset = addr % beat_bytes;
        let beats = (offset + payload).div_ceil(beat_bytes).max(1);
        if !(1..=MAX_INCR_BEATS).contains(&beats) {
            return Err(BurstError::BeatCount {
                beats,
                burst: BurstType::Incr,
            });
        }
        Ok(Self {
            addr,
            beats,
            beat_bytes,
            burst: BurstType::Incr,
            payload,
        })
    }

    /// Start address of the burst.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Number of data beats (`AxLEN + 1`).
    #[must_use]
    pub fn num_beats(&self) -> u64 {
        self.beats
    }

    /// The encoded `AxLEN` field (beats − 1).
    #[must_use]
    pub fn axlen(&self) -> u8 {
        (self.beats - 1) as u8
    }

    /// Bytes per beat (`2^AxSIZE`).
    #[must_use]
    pub fn beat_bytes(&self) -> u64 {
        self.beat_bytes
    }

    /// The encoded `AxSIZE` field (log2 of the beat size).
    #[must_use]
    pub fn axsize(&self) -> u8 {
        self.beat_bytes.trailing_zeros() as u8
    }

    /// Burst type.
    #[must_use]
    pub fn burst_type(&self) -> BurstType {
        self.burst
    }

    /// Valid payload bytes carried by the burst.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.payload
    }

    /// Address of beat `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_beats()`.
    #[must_use]
    pub fn beat_addr(&self, i: u64) -> u64 {
        assert!(i < self.beats, "beat index out of range");
        match self.burst {
            BurstType::Fixed => self.addr,
            BurstType::Incr => {
                let aligned = self.addr - self.addr % self.beat_bytes;
                if i == 0 {
                    self.addr
                } else {
                    aligned + i * self.beat_bytes
                }
            }
            BurstType::Wrap => {
                let container = self.beats * self.beat_bytes;
                let base = self.addr - self.addr % container;
                base + (self.addr - base + i * self.beat_bytes) % container
            }
        }
    }

    /// Last byte address touched by the burst (inclusive).
    #[must_use]
    pub fn last_byte(&self) -> u64 {
        match self.burst {
            BurstType::Fixed => self.addr + self.beat_bytes - 1,
            BurstType::Incr => self.addr + self.payload - 1,
            BurstType::Wrap => {
                let container = self.beats * self.beat_bytes;
                let base = self.addr - self.addr % container;
                base + container - 1
            }
        }
    }

    /// Whether an `INCR` burst crosses a 4 KiB boundary (illegal in AXI).
    /// `WRAP`/`FIXED` bursts cannot cross by construction.
    #[must_use]
    pub fn crosses_4k_boundary(&self) -> bool {
        if self.burst != BurstType::Incr {
            return false;
        }
        self.addr / BOUNDARY_4K != self.last_byte() / BOUNDARY_4K
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_geometry() {
        let b = Burst::new(0x100, 4, 8, BurstType::Incr).unwrap();
        assert_eq!(b.axlen(), 3);
        assert_eq!(b.axsize(), 3);
        assert_eq!(b.payload_bytes(), 32);
        assert_eq!(b.beat_addr(0), 0x100);
        assert_eq!(b.beat_addr(3), 0x118);
        assert_eq!(b.last_byte(), 0x11F);
    }

    #[test]
    fn unaligned_incr_covering() {
        // 10 bytes starting at offset 3 in a 4-byte bus: beats cover 3+10=13
        // bytes of bus width → ceil(13/4) = 4 beats.
        let b = Burst::incr_covering(0x103, 10, 4).unwrap();
        assert_eq!(b.num_beats(), 4);
        assert_eq!(b.payload_bytes(), 10);
        assert_eq!(b.beat_addr(0), 0x103);
        assert_eq!(b.beat_addr(1), 0x104);
        assert_eq!(b.last_byte(), 0x10C);
    }

    #[test]
    fn incr_max_256_beats() {
        assert!(Burst::new(0, 256, 4, BurstType::Incr).is_ok());
        assert!(matches!(
            Burst::new(0, 257, 4, BurstType::Incr),
            Err(BurstError::BeatCount { beats: 257, .. })
        ));
    }

    #[test]
    fn fixed_max_16_beats() {
        assert!(Burst::new(0, 16, 4, BurstType::Fixed).is_ok());
        assert!(Burst::new(0, 17, 4, BurstType::Fixed).is_err());
    }

    #[test]
    fn wrap_beat_counts() {
        for beats in [2u64, 4, 8, 16] {
            assert!(Burst::new(0x40, beats, 4, BurstType::Wrap).is_ok());
        }
        for beats in [1u64, 3, 5, 32] {
            assert!(Burst::new(0x40, beats, 4, BurstType::Wrap).is_err());
        }
    }

    #[test]
    fn wrap_alignment_enforced() {
        assert!(matches!(
            Burst::new(0x41, 4, 4, BurstType::Wrap),
            Err(BurstError::WrapUnaligned { addr: 0x41 })
        ));
    }

    #[test]
    fn wrap_addresses_wrap_around() {
        // 4 beats × 4 B container = 16 B; start mid-container.
        let b = Burst::new(0x48, 4, 4, BurstType::Wrap).unwrap();
        assert_eq!(b.beat_addr(0), 0x48);
        assert_eq!(b.beat_addr(1), 0x4C);
        assert_eq!(b.beat_addr(2), 0x40); // wrapped
        assert_eq!(b.beat_addr(3), 0x44);
        assert_eq!(b.last_byte(), 0x4F);
    }

    #[test]
    fn fixed_addresses_constant() {
        let b = Burst::new(0x200, 4, 8, BurstType::Fixed).unwrap();
        for i in 0..4 {
            assert_eq!(b.beat_addr(i), 0x200);
        }
    }

    #[test]
    fn boundary_detection() {
        let ok = Burst::new(0xF00, 64, 4, BurstType::Incr).unwrap();
        assert!(!ok.crosses_4k_boundary()); // ends at 0xFFF
        let bad = Burst::new(0xF01, 64, 4, BurstType::Incr).unwrap();
        assert!(bad.crosses_4k_boundary());
    }

    #[test]
    fn rejects_bad_beat_sizes() {
        assert!(Burst::new(0, 1, 0, BurstType::Incr).is_err());
        assert!(Burst::new(0, 1, 3, BurstType::Incr).is_err());
        assert!(Burst::new(0, 1, 256, BurstType::Incr).is_err());
        assert!(Burst::new(0, 1, 128, BurstType::Incr).is_ok()); // 1024-bit bus
    }

    #[test]
    fn display_burst_type() {
        assert_eq!(BurstType::Incr.to_string(), "INCR");
        assert_eq!(BurstType::Wrap.to_string(), "WRAP");
        assert_eq!(BurstType::Fixed.to_string(), "FIXED");
    }
}
