//! Splitting DMA transfers into AXI-compliant bursts.
//!
//! The paper's evaluation drives the NoC from DMA engines whose
//! "workload-specific burst length is used ... to create AXI-compliant
//! bursts (adhering to address boundaries and max number of beats)" (§IV).
//! [`split_transfer`] implements that compliance step: an arbitrary
//! `(address, length)` transfer becomes a sequence of `INCR` bursts, each at
//! most 256 beats long and never crossing a 4 KiB boundary.

use crate::burst::Burst;
use crate::{BOUNDARY_4K, MAX_INCR_BEATS};

/// Splits a byte transfer into AXI-compliant `INCR` bursts.
///
/// Properties guaranteed (and property-tested in `tests/`):
///
/// * payload bytes sum to `len`,
/// * bursts are contiguous and ordered by address,
/// * no burst crosses a 4 KiB boundary,
/// * no burst exceeds 256 beats,
/// * the minimal number of bursts under those rules is produced.
///
/// A zero-length transfer yields no bursts.
///
/// # Examples
///
/// ```
/// use axi::split::split_transfer;
///
/// // 64 KiB on a 512-bit (64 B) bus: 4 bursts of 256 beats each
/// // (16 KiB per burst would cross 4 KiB, so 4 KiB chunks → 16 bursts).
/// let bursts = split_transfer(0, 65536, 64);
/// assert_eq!(bursts.len(), 16);
/// assert!(bursts.iter().all(|b| b.num_beats() == 64));
/// ```
#[must_use]
pub fn split_transfer(addr: u64, len: u64, beat_bytes: u64) -> Vec<Burst> {
    SplitCursor::new(addr, len, beat_bytes).collect()
}

/// An allocation-free, incremental [`split_transfer`]: yields the exact
/// same burst sequence one at a time, so a DMA model can hold the split
/// *state* (three words) in its in-flight transaction record instead of
/// materializing a `Vec<Burst>` per transfer on the hot path.
///
/// The split is greedy and position-local — each burst depends only on the
/// current address and remaining length — which is what makes the
/// incremental form bit-identical to the batch one (pinned by a property
/// test in `tests/properties.rs`).
///
/// # Examples
///
/// ```
/// use axi::split::{split_transfer, SplitCursor};
///
/// let cursor = SplitCursor::new(0x1F80, 256, 8);
/// assert_eq!(cursor.collect::<Vec<_>>(), split_transfer(0x1F80, 256, 8));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SplitCursor {
    cur: u64,
    remaining: u64,
    beat_bytes: u64,
}

impl SplitCursor {
    /// Starts a split of `len` bytes at `addr` on a `beat_bytes`-wide bus.
    ///
    /// # Panics
    ///
    /// Panics on an invalid bus width, exactly like [`split_transfer`].
    #[must_use]
    pub fn new(addr: u64, len: u64, beat_bytes: u64) -> Self {
        assert!(
            (1..=128).contains(&beat_bytes) && beat_bytes.is_power_of_two(),
            "invalid bus width"
        );
        Self {
            cur: addr,
            remaining: len,
            beat_bytes,
        }
    }

    /// A cursor that yields no bursts (the idle leg of a one-sided
    /// transfer).
    #[must_use]
    pub const fn empty() -> Self {
        Self {
            cur: 0,
            remaining: 0,
            beat_bytes: 1,
        }
    }

    /// Whether every burst has been yielded.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// The cursor's three words of state `(cur, remaining, beat_bytes)`,
    /// for checkpointing.
    #[must_use]
    pub fn parts(&self) -> (u64, u64, u64) {
        (self.cur, self.remaining, self.beat_bytes)
    }

    /// Rebuilds a cursor from [`parts`](Self::parts), validating the bus
    /// width instead of panicking on corrupt snapshot bytes.
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn from_parts(cur: u64, remaining: u64, beat_bytes: u64) -> Result<Self, &'static str> {
        if !(1..=128).contains(&beat_bytes) || !beat_bytes.is_power_of_two() {
            return Err("split cursor bus width invalid");
        }
        Ok(Self {
            cur,
            remaining,
            beat_bytes,
        })
    }
}

impl Iterator for SplitCursor {
    type Item = Burst;

    fn next(&mut self) -> Option<Burst> {
        if self.remaining == 0 {
            return None;
        }
        // Limit 1: do not cross the next 4 KiB boundary.
        let to_boundary = BOUNDARY_4K - self.cur % BOUNDARY_4K;
        // Limit 2: at most 256 beats, accounting for a misaligned start.
        let offset = self.cur % self.beat_bytes;
        let max_burst_payload = MAX_INCR_BEATS * self.beat_bytes - offset;
        let chunk = self.remaining.min(to_boundary).min(max_burst_payload);
        let burst = Burst::incr_covering(self.cur, chunk, self.beat_bytes)
            .expect("split produced a legal burst");
        debug_assert!(!burst.crosses_4k_boundary());
        self.cur += chunk;
        self.remaining -= chunk;
        Some(burst)
    }
}

/// Splits a transfer with an additional user-imposed cap on the bytes per
/// burst, as used by the paper's burst-length sweeps ("Burst size < 4",
/// "< 100", ..., "< 64000"). `max_burst_bytes` is clamped to at least one
/// byte.
#[must_use]
pub fn split_transfer_capped(
    addr: u64,
    len: u64,
    beat_bytes: u64,
    max_burst_bytes: u64,
) -> Vec<Burst> {
    let cap = max_burst_bytes.max(1);
    let mut bursts = Vec::new();
    let mut cur = addr;
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(cap);
        bursts.extend(split_transfer(cur, chunk, beat_bytes));
        cur += chunk;
        remaining -= chunk;
    }
    bursts
}

/// Total number of data beats needed for a transfer after splitting —
/// cheaper than materializing the burst list when only accounting matters.
#[must_use]
pub fn transfer_beats(addr: u64, len: u64, beat_bytes: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let offset = addr % beat_bytes;
    (offset + len).div_ceil(beat_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BurstType;

    fn check_invariants(addr: u64, len: u64, _beat_bytes: u64, bursts: &[Burst]) {
        let total: u64 = bursts.iter().map(Burst::payload_bytes).sum();
        assert_eq!(total, len, "payload preserved");
        let mut cur = addr;
        for b in bursts {
            assert_eq!(b.addr(), cur, "contiguous");
            assert_eq!(b.burst_type(), BurstType::Incr);
            assert!(b.num_beats() <= MAX_INCR_BEATS);
            assert!(
                !b.crosses_4k_boundary(),
                "no 4k crossing at {:#x}",
                b.addr()
            );
            cur += b.payload_bytes();
        }
    }

    #[test]
    fn zero_length_yields_nothing() {
        assert!(split_transfer(0x1000, 0, 8).is_empty());
    }

    #[test]
    fn small_aligned_transfer_is_one_burst() {
        let bursts = split_transfer(0x1000, 64, 8);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].num_beats(), 8);
        check_invariants(0x1000, 64, 8, &bursts);
    }

    #[test]
    fn boundary_split() {
        // 256 bytes starting 128 bytes before a 4 KiB boundary → 2 bursts.
        let bursts = split_transfer(0x1F80, 256, 8);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].payload_bytes(), 128);
        assert_eq!(bursts[1].addr(), 0x2000);
        check_invariants(0x1F80, 256, 8, &bursts);
    }

    #[test]
    fn beat_limit_split_on_narrow_bus() {
        // 4 KiB on a 4-byte bus needs 1024 beats → 4 bursts of 256 beats.
        let bursts = split_transfer(0, 4096, 4);
        assert_eq!(bursts.len(), 4);
        assert!(bursts.iter().all(|b| b.num_beats() == 256));
        check_invariants(0, 4096, 4, &bursts);
    }

    #[test]
    fn unaligned_start() {
        let bursts = split_transfer(0x1003, 10_000, 8);
        check_invariants(0x1003, 10_000, 8, &bursts);
    }

    #[test]
    fn wide_bus_64k() {
        // The paper's largest DMA burst length: 64 KB on the wide NoC.
        let bursts = split_transfer(0, 64_000, 64);
        check_invariants(0, 64_000, 64, &bursts);
        // 4 KiB boundary dominates: 64 beats × 64 B = 4 KiB per burst.
        assert_eq!(bursts[0].num_beats(), 64);
    }

    #[test]
    fn capped_split_respects_cap() {
        let bursts = split_transfer_capped(0, 1000, 4, 100);
        check_invariants(0, 1000, 4, &bursts);
        assert!(bursts.iter().all(|b| b.payload_bytes() <= 100));
        assert_eq!(bursts.len(), 10);
    }

    #[test]
    fn cap_of_zero_clamps_to_one_byte() {
        let bursts = split_transfer_capped(0, 4, 4, 0);
        assert_eq!(bursts.len(), 4);
        check_invariants(0, 4, 4, &bursts);
    }

    #[test]
    fn transfer_beats_matches_split() {
        for &(addr, len, bb) in &[
            (0u64, 4096u64, 4u64),
            (0x103, 999, 8),
            (0xFFF, 2, 64),
            (7, 1, 4),
        ] {
            let split_total: u64 = split_transfer(addr, len, bb)
                .iter()
                .map(Burst::num_beats)
                .sum();
            assert_eq!(
                split_total,
                transfer_beats(addr, len, bb),
                "{addr:#x}+{len}"
            );
        }
    }

    #[test]
    fn minimality_for_aligned_power_of_two() {
        // 8 KiB aligned on a 64-B bus: exactly two 4 KiB bursts.
        let bursts = split_transfer(0x4000, 8192, 64);
        assert_eq!(bursts.len(), 2);
    }
}
