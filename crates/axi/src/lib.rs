//! # axi — an AXI4 protocol model for NoC simulation
//!
//! PATRONoC's central design decision is to keep the **AXI protocol
//! end-to-end**: the NoC's links are full AXI interfaces (five independent
//! channels — AW, W, B, AR, R — with bursts, multiple outstanding
//! transactions and ID-based ordering) instead of a serial packet format that
//! requires protocol translation at every endpoint.
//!
//! This crate models the protocol layer the simulator needs:
//!
//! * [`params::AxiParams`] / [`params::ConfigError`] — the design-time
//!   parameter space of Table I (address width, data width, ID width,
//!   maximum outstanding transactions) with validation.
//! * [`burst`] — burst descriptors (`FIXED`/`INCR`/`WRAP`), beat geometry and
//!   the AXI legality rules (4 KiB boundary, ≤256 beats for `INCR`).
//! * [`split`] — splitting an arbitrarily long DMA transfer into a sequence
//!   of AXI-compliant bursts, exactly what the paper's DMA-engine RTL model
//!   does ("adhering to address boundaries and max number of beats", §IV).
//! * [`id`] — ID remapping tables (`axi_id_remap`) that give crosspoints
//!   isomorphic ports, and outstanding-transaction accounting.
//! * [`addr`] — address maps and the region decode used to build each XP's
//!   routing table.
//! * [`check`] — a compliance checker used by tests and property tests.
//!
//! ## Example: split a 10 KiB DMA transfer into legal bursts
//!
//! ```
//! use axi::split::split_transfer;
//!
//! // 10 KiB starting at a non-aligned address, 64-bit data bus.
//! let bursts = split_transfer(0x1000_0004, 10 * 1024, 8);
//! for b in &bursts {
//!     assert!(b.num_beats() <= 256);
//!     assert!(!b.crosses_4k_boundary());
//! }
//! let total: u64 = bursts.iter().map(|b| b.payload_bytes()).sum();
//! assert_eq!(total, 10 * 1024);
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod burst;
pub mod check;
pub mod id;
pub mod params;
pub mod split;

pub use addr::AddressMap;
pub use burst::{Burst, BurstType};
pub use id::{AxiId, IdRemapper};
pub use params::{AxiParams, ConfigError};
pub use split::{split_transfer, SplitCursor};

/// The AXI4 maximum number of beats in one `INCR` burst.
pub const MAX_INCR_BEATS: u64 = 256;

/// AXI bursts must not cross this address boundary (4 KiB).
pub const BOUNDARY_4K: u64 = 4096;
