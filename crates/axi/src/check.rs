//! AXI compliance checking.
//!
//! [`check_burst_sequence`] verifies that a burst list produced by a DMA
//! engine (or by [`crate::split::split_transfer`]) is a legal, complete and
//! contiguous covering of a transfer. It is used by the test suites of every
//! simulator crate and by the property tests; in a hardware flow this is the
//! role a bus protocol checker plays in the testbench.

use crate::burst::{Burst, BurstType};
use crate::MAX_INCR_BEATS;
use std::fmt;

/// A violation found by [`check_burst_sequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A burst crosses a 4 KiB boundary.
    Crosses4k {
        /// Index of the offending burst.
        index: usize,
        /// Its start address.
        addr: u64,
    },
    /// A burst exceeds the 256-beat INCR limit.
    TooManyBeats {
        /// Index of the offending burst.
        index: usize,
        /// Its beat count.
        beats: u64,
    },
    /// The sequence is not contiguous.
    Gap {
        /// Index of the burst after the gap.
        index: usize,
        /// Expected start address.
        expected: u64,
        /// Actual start address.
        actual: u64,
    },
    /// The total payload differs from the transfer length.
    WrongTotal {
        /// Expected total bytes.
        expected: u64,
        /// Actual total bytes.
        actual: u64,
    },
    /// A non-INCR burst appeared in DMA traffic.
    NotIncr {
        /// Index of the offending burst.
        index: usize,
        /// Its burst type.
        burst: BurstType,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Crosses4k { index, addr } => {
                write!(f, "burst {index} at {addr:#x} crosses a 4 KiB boundary")
            }
            Self::TooManyBeats { index, beats } => {
                write!(f, "burst {index} has {beats} beats (> {MAX_INCR_BEATS})")
            }
            Self::Gap {
                index,
                expected,
                actual,
            } => write!(
                f,
                "burst {index} starts at {actual:#x}, expected {expected:#x}"
            ),
            Self::WrongTotal { expected, actual } => {
                write!(f, "total payload {actual} bytes, expected {expected}")
            }
            Self::NotIncr { index, burst } => {
                write!(f, "burst {index} is {burst}, expected INCR")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks that `bursts` is an AXI-compliant, contiguous covering of the
/// transfer `(addr, len)`. Returns all violations found (empty = compliant).
#[must_use]
pub fn check_burst_sequence(addr: u64, len: u64, bursts: &[Burst]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut cursor = addr;
    let mut total = 0u64;
    for (i, b) in bursts.iter().enumerate() {
        if b.burst_type() != BurstType::Incr {
            violations.push(Violation::NotIncr {
                index: i,
                burst: b.burst_type(),
            });
        }
        if b.num_beats() > MAX_INCR_BEATS {
            violations.push(Violation::TooManyBeats {
                index: i,
                beats: b.num_beats(),
            });
        }
        if b.crosses_4k_boundary() {
            violations.push(Violation::Crosses4k {
                index: i,
                addr: b.addr(),
            });
        }
        if b.addr() != cursor {
            violations.push(Violation::Gap {
                index: i,
                expected: cursor,
                actual: b.addr(),
            });
            cursor = b.addr();
        }
        cursor += b.payload_bytes();
        total += b.payload_bytes();
    }
    if total != len {
        violations.push(Violation::WrongTotal {
            expected: len,
            actual: total,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_transfer;

    #[test]
    fn split_output_is_compliant() {
        for &(addr, len, bb) in &[
            (0u64, 65536u64, 64u64),
            (0x1003, 9999, 4),
            (0xFFE, 4, 8),
            (0, 1, 128),
        ] {
            let bursts = split_transfer(addr, len, bb);
            assert!(
                check_burst_sequence(addr, len, &bursts).is_empty(),
                "{addr:#x}+{len} on {bb}-byte bus"
            );
        }
    }

    #[test]
    fn detects_gap() {
        let mut bursts = split_transfer(0, 4096, 4);
        assert!(bursts.len() >= 3);
        bursts.remove(1);
        let v = check_burst_sequence(0, 4096, &bursts);
        assert!(v.iter().any(|x| matches!(x, Violation::Gap { .. })));
        assert!(v.iter().any(|x| matches!(x, Violation::WrongTotal { .. })));
    }

    #[test]
    fn detects_4k_crossing() {
        let bad = Burst::incr_covering(0xF00, 512, 4).unwrap();
        let v = check_burst_sequence(0xF00, 512, &[bad]);
        assert!(v.iter().any(|x| matches!(x, Violation::Crosses4k { .. })));
    }

    #[test]
    fn detects_wrong_type() {
        let b = Burst::new(0x40, 4, 4, BurstType::Wrap).unwrap();
        let v = check_burst_sequence(0x40, 16, &[b]);
        assert!(v.iter().any(|x| matches!(x, Violation::NotIncr { .. })));
    }

    #[test]
    fn empty_sequence_for_zero_transfer_ok() {
        assert!(check_burst_sequence(0x100, 0, &[]).is_empty());
    }

    #[test]
    fn violations_display() {
        let bad = Burst::incr_covering(0xF00, 512, 4).unwrap();
        let v = check_burst_sequence(0, 512, &[bad]);
        for violation in v {
            assert!(!violation.to_string().is_empty());
        }
    }
}
