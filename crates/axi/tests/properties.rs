//! Property-based tests for the AXI protocol model.

use axi::check::check_burst_sequence;
use axi::split::{split_transfer, split_transfer_capped, transfer_beats, SplitCursor};
use axi::{AddressMap, Burst, BurstType};
use proptest::prelude::*;

fn bus_widths() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![1u64, 2, 4, 8, 16, 32, 64, 128])
}

proptest! {
    /// Any transfer splits into a compliant, complete, contiguous covering.
    #[test]
    fn split_is_always_compliant(
        addr in 0u64..0x1_0000_0000,
        len in 0u64..200_000,
        bb in bus_widths(),
    ) {
        let bursts = split_transfer(addr, len, bb);
        let violations = check_burst_sequence(addr, len, &bursts);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The capped splitter never emits a burst above the cap and still
    /// covers the transfer exactly.
    #[test]
    fn capped_split_compliant_and_capped(
        addr in 0u64..0x1000_0000,
        len in 0u64..100_000,
        bb in bus_widths(),
        cap in 1u64..70_000,
    ) {
        let bursts = split_transfer_capped(addr, len, bb, cap);
        prop_assert!(check_burst_sequence(addr, len, &bursts).is_empty());
        prop_assert!(bursts.iter().all(|b| b.payload_bytes() <= cap));
    }

    /// Beat accounting shortcut agrees with materialized splitting when a
    /// single burst spans the transfer (no boundary effects), and is a lower
    /// bound in general (splitting can only add partial beats).
    #[test]
    fn transfer_beats_is_lower_bound(
        addr in 0u64..0x1000_0000,
        len in 1u64..100_000,
        bb in bus_widths(),
    ) {
        let exact: u64 = split_transfer(addr, len, bb).iter().map(Burst::num_beats).sum();
        let lower = transfer_beats(addr, len, bb);
        prop_assert!(lower <= exact);
        // They differ only by boundary-induced beat fragmentation: at most
        // one extra beat per burst.
        let n = split_transfer(addr, len, bb).len() as u64;
        prop_assert!(exact <= lower + n);
    }

    /// The incremental cursor is position-local: after consuming any
    /// prefix of bursts, a *fresh* cursor started at the consumed-up-to
    /// address with the remaining length yields exactly the suffix. This
    /// is the property that lets a DMA engine keep split state as three
    /// words in its in-flight record and still be bit-identical to
    /// materializing the whole `Vec<Burst>` up front.
    #[test]
    fn split_cursor_is_position_local(
        addr in 0u64..0x1_0000_0000,
        len in 0u64..200_000,
        bb in bus_widths(),
        prefix in 0usize..64,
    ) {
        let batch = split_transfer(addr, len, bb);
        let mut cursor = SplitCursor::new(addr, len, bb);
        let k = prefix.min(batch.len());
        let mut consumed_bytes = 0;
        for expected in batch.iter().take(k) {
            prop_assert!(!cursor.is_done());
            let got = cursor.next().expect("cursor yields the whole batch");
            prop_assert_eq!(&got, expected);
            consumed_bytes += got.payload_bytes();
        }
        let restarted = SplitCursor::new(addr + consumed_bytes, len - consumed_bytes, bb);
        prop_assert_eq!(restarted.collect::<Vec<_>>(), batch[k..].to_vec());
        prop_assert_eq!(cursor.is_done(), k == batch.len());
    }

    /// Every beat address of an INCR burst stays within the burst's span and
    /// increases monotonically.
    #[test]
    fn incr_beat_addresses_monotone(
        addr in 0u64..0x1000_0000,
        beats in 1u64..=256,
        bb in bus_widths(),
    ) {
        let Ok(b) = Burst::new(addr, beats, bb, BurstType::Incr) else {
            return Ok(());
        };
        let mut prev = None;
        for i in 0..b.num_beats() {
            let a = b.beat_addr(i);
            if let Some(p) = prev {
                prop_assert!(a > p);
                prop_assert_eq!(a % bb, 0);
            }
            prev = Some(a);
        }
    }

    /// Wrap bursts visit exactly the container's beat-aligned addresses.
    #[test]
    fn wrap_visits_whole_container(
        slot in 0u64..1000,
        beats in prop::sample::select(vec![2u64, 4, 8, 16]),
        bb in bus_widths(),
        start_beat in 0u64..16,
    ) {
        let container = beats * bb;
        let base = slot * container;
        let addr = base + (start_beat % beats) * bb;
        let b = Burst::new(addr, beats, bb, BurstType::Wrap).unwrap();
        let mut visited: Vec<u64> = (0..beats).map(|i| b.beat_addr(i)).collect();
        visited.sort_unstable();
        let expected: Vec<u64> = (0..beats).map(|i| base + i * bb).collect();
        prop_assert_eq!(visited, expected);
    }

    /// Uniform address maps decode every in-range address to the right
    /// endpoint and reject out-of-range addresses.
    #[test]
    fn uniform_map_decode_consistent(
        n in 1usize..64,
        log_size in 10u32..24,
        probe in 0u64..(1u64 << 32),
    ) {
        let size = 1u64 << log_size;
        let base = 0x8000_0000u64;
        let map = AddressMap::uniform(n, size, base);
        let decoded = map.decode(probe);
        let expected = if probe >= base && probe < base + n as u64 * size {
            Some(((probe - base) / size) as usize)
        } else {
            None
        };
        prop_assert_eq!(decoded, expected);
    }
}
