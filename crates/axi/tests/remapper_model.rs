//! Model-based property test of the ID remapper: against a reference
//! implementation built on plain maps, for arbitrary acquire/release
//! schedules.

use axi::id::{AxiId, IdRemapper, SourceKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Acquire for (port, id).
    Acquire(u8, u16),
    /// Release the nth currently-live downstream ID (mod live count).
    Release(usize),
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u16..8).prop_map(|(p, i)| Op::Acquire(p, i)),
        (0usize..64).prop_map(Op::Release),
    ]
}

proptest! {
    #[test]
    fn remapper_matches_reference(
        iw in 1u32..=4,
        schedule in prop::collection::vec(ops(), 1..200),
    ) {
        let mut remap = IdRemapper::new(iw);
        // Reference: key → (downstream id, inflight count).
        let mut reference: BTreeMap<SourceKey, (AxiId, u32)> = BTreeMap::new();
        // Multiset of live downstream ids with counts, ordered for Release.
        let capacity = 1usize << iw;
        for op in schedule {
            match op {
                Op::Acquire(port, id) => {
                    let key = SourceKey { port, id: AxiId(id) };
                    let expected_ok =
                        reference.contains_key(&key) || reference.len() < capacity;
                    prop_assert_eq!(remap.can_acquire(key), expected_ok);
                    match remap.acquire(key) {
                        Some(out) => {
                            prop_assert!(expected_ok);
                            prop_assert!((out.0 as usize) < capacity);
                            let entry = reference.entry(key).or_insert((out, 0));
                            // Same key must reuse the same downstream id.
                            prop_assert_eq!(entry.0, out);
                            entry.1 += 1;
                            // Distinct keys must hold distinct ids.
                            let distinct: std::collections::BTreeSet<u16> =
                                reference.values().map(|(o, _)| o.0).collect();
                            prop_assert_eq!(distinct.len(), reference.len());
                            // Lookup agrees.
                            prop_assert_eq!(remap.source_of(out), Some(key));
                        }
                        None => prop_assert!(!expected_ok),
                    }
                }
                Op::Release(nth) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let mut keys: Vec<SourceKey> = reference.keys().copied().collect();
                    keys.sort_by_key(|k| (k.port, k.id));
                    let key = keys[nth % keys.len()];
                    let (out, count) = reference[&key];
                    remap.release(out);
                    if count == 1 {
                        reference.remove(&key);
                        prop_assert_eq!(remap.source_of(out), None);
                    } else {
                        reference.get_mut(&key).expect("live").1 -= 1;
                        prop_assert_eq!(remap.source_of(out), Some(key));
                    }
                }
            }
            prop_assert_eq!(remap.in_use(), reference.len());
        }
    }
}
