//! DNN workload traffic traces (paper Fig. 7 / Fig. 8).
//!
//! The paper uses GVSoC (a full-system RISC-V SoC simulator) to extract the
//! traffic of three CNN deployment schemes and replays it against the RTL.
//! The NoC only observes the resulting *transfer trace* — who moves how many
//! bytes to whom, and in which dependency order — so this module generates
//! equivalent traces directly from a ResNet-34 layer graph (with the paper's
//! 90 % channel-shrink factor) deployed on 16 cores:
//!
//! * [`DnnWorkload::DistributedTraining`] — model replication: each core
//!   runs forward and backward passes (weight reads from shared L2) followed
//!   by a ring all-reduce of gradients (core-to-core writes). Mixed
//!   L2↔L1 and L1↔L1 traffic.
//! * [`DnnWorkload::ParallelConv`] — layer-parallel inference: every layer
//!   is tiled across all cores; pure L2→L1 (weights + input tiles) and
//!   L1→L2 (output tiles) traffic with a barrier between layers.
//! * [`DnnWorkload::PipelinedConv`] — depth-first inference: consecutive
//!   layers are mapped to consecutive cores and image tiles stream through
//!   the pipeline; almost pure L1→L1 neighbour traffic, with only core 0 and
//!   core 15 touching L2.

use crate::chkpt::{self, corrupt};
use crate::source::{TrafficSource, Transfer, TransferKind};
use simkit::snap::{DecodeLimits, Decoder, Encoder, SnapError};
use simkit::{Cycle, Horizon, Rng};
use std::collections::VecDeque;

/// One convolutional (or fully-connected) layer of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Input channels (after shrink).
    pub in_ch: u64,
    /// Output channels (after shrink).
    pub out_ch: u64,
    /// Input feature-map height.
    pub h: u64,
    /// Input feature-map width.
    pub w: u64,
    /// Kernel size (k×k).
    pub k: u64,
    /// Stride.
    pub stride: u64,
}

impl ConvLayer {
    /// Weight bytes (int8).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        (self.k * self.k * self.in_ch * self.out_ch).max(1)
    }

    /// Input feature-map bytes (int8).
    #[must_use]
    pub fn ifmap_bytes(&self) -> u64 {
        (self.in_ch * self.h * self.w).max(1)
    }

    /// Output feature-map bytes (int8).
    #[must_use]
    pub fn ofmap_bytes(&self) -> u64 {
        let oh = (self.h / self.stride).max(1);
        let ow = (self.w / self.stride).max(1);
        (self.out_ch * oh * ow).max(1)
    }
}

/// Builds the 34 weight layers of ResNet-34 with channels scaled by
/// `channel_scale` (the paper's "90 % channel shrink factor" corresponds to
/// `channel_scale = 0.1`).
///
/// # Panics
///
/// Panics unless `0.0 < channel_scale <= 1.0`.
#[must_use]
pub fn resnet34_layers(channel_scale: f64) -> Vec<ConvLayer> {
    assert!(
        channel_scale > 0.0 && channel_scale <= 1.0,
        "channel scale must be in (0, 1]"
    );
    let ch = |c: u64| ((c as f64 * channel_scale).round() as u64).max(1);
    let mut layers = Vec::with_capacity(34);
    // Stem: 7×7, 64, /2 on 224×224 RGB.
    layers.push(ConvLayer {
        in_ch: 3,
        out_ch: ch(64),
        h: 224,
        w: 224,
        k: 7,
        stride: 2,
    });
    // Residual stages: (channels, blocks, input resolution).
    let stages: [(u64, usize, u64); 4] = [(64, 3, 56), (128, 4, 28), (256, 6, 14), (512, 3, 7)];
    let mut prev_ch = ch(64);
    for (i, &(c, blocks, res)) in stages.iter().enumerate() {
        let c = ch(c);
        for b in 0..blocks {
            // First conv of the first block of stages 2-4 downsamples from
            // the previous stage's resolution.
            let (h_in, stride) = if b == 0 && i > 0 {
                (res * 2, 2)
            } else {
                (res, 1)
            };
            layers.push(ConvLayer {
                in_ch: prev_ch,
                out_ch: c,
                h: h_in,
                w: h_in,
                k: 3,
                stride,
            });
            layers.push(ConvLayer {
                in_ch: c,
                out_ch: c,
                h: res,
                w: res,
                k: 3,
                stride: 1,
            });
            prev_ch = c;
        }
    }
    // Classifier: 512 → 1000 fully connected (1×1 "conv" on a 1×1 map).
    layers.push(ConvLayer {
        in_ch: prev_ch,
        out_ch: 1000,
        h: 1,
        w: 1,
        k: 1,
        stride: 1,
    });
    debug_assert_eq!(layers.len(), 34);
    layers
}

/// The three deployment schemes of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnWorkload {
    /// Replicated model, ring all-reduce of gradients.
    DistributedTraining,
    /// Every layer tiled across all cores (pure core↔L2).
    ParallelConv,
    /// Depth-first pipeline across cores (mostly core↔core).
    PipelinedConv,
}

impl DnnWorkload {
    /// All workloads, in the paper's Fig. 8 order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [
            Self::DistributedTraining,
            Self::ParallelConv,
            Self::PipelinedConv,
        ]
    }

    /// Human-readable name matching the paper's legend.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::DistributedTraining => "Train",
            Self::ParallelConv => "Par Conv",
            Self::PipelinedConv => "Pipe Conv",
        }
    }
}

/// Configuration for [`DnnTraffic`].
#[derive(Debug, Clone)]
pub struct DnnConfig {
    /// Deployment scheme.
    pub workload: DnnWorkload,
    /// Number of cores (masters); cores sit at nodes `0..cores`.
    pub cores: usize,
    /// Node hosting the shared L2 memory.
    pub l2_node: usize,
    /// Channel scaling (0.1 = the paper's 90 % shrink).
    pub channel_scale: f64,
    /// Row tiles for the pipelined schedule.
    pub tiles: usize,
    /// Training steps / images to process.
    pub steps: usize,
    /// Pipelined schedule only: weights stay resident in each stage's L1
    /// (preloaded before the measurement), so the steady-state trace carries
    /// activations only. With `false`, per-stage weight reads from L2 are
    /// prepended to the trace.
    pub pipeline_weights_resident: bool,
    /// Trace replay mode (the default, matching the paper's methodology):
    /// transfers are ordered only *within* each core — every core replays
    /// its extracted traffic sequence back-to-back, as when GVSoC-generated
    /// patterns are re-injected into the RTL simulation. With `replay =
    /// false` the full cross-core dependency graph is enforced instead
    /// (producer→consumer), which measures the *workload's* critical path
    /// rather than the NoC's capacity under the workload's spatial pattern.
    pub replay: bool,
    /// Per-endpoint address region size (offsets kept in range).
    pub region_size: u64,
    /// RNG seed for offset placement.
    pub seed: u64,
}

impl Default for DnnConfig {
    fn default() -> Self {
        Self {
            workload: DnnWorkload::ParallelConv,
            cores: 16,
            l2_node: 6, // endpoint (2,1) of the 4×4 mesh, like Fig. 5a
            channel_scale: 0.1,
            tiles: 8,
            steps: 1,
            pipeline_weights_resident: true,
            replay: true,
            region_size: 1 << 24,
            seed: 1,
        }
    }
}

impl DnnConfig {
    /// Per-workload evaluation defaults.
    ///
    /// Distributed training replicates the model on every core, so it uses
    /// the paper's 90 % channel shrink (16 replicas must fit the cores'
    /// memories); the same shrunk model is tiled for the layer-parallel
    /// schedule. The pipelined (depth-first) schedule instead *partitions*
    /// one network across the 16 cores — each core holds only its own
    /// layers' weights — so it runs the model at full channel width with
    /// weights resident, which is the regime depth-first dataflows are
    /// designed for (high-resolution activations streaming core to core).
    #[must_use]
    pub fn for_workload(workload: DnnWorkload) -> Self {
        let base = Self {
            workload,
            ..Self::default()
        };
        match workload {
            DnnWorkload::PipelinedConv => Self {
                channel_scale: 0.9,
                ..base
            },
            _ => base,
        }
    }
}

#[derive(Debug, Clone)]
struct TraceEntry {
    master: usize,
    dst: usize,
    bytes: u64,
    kind: TransferKind,
}

/// A dependency-ordered transfer trace implementing [`TrafficSource`].
///
/// Entries become pollable once all their dependencies have completed;
/// [`TrafficSource::on_complete`] drives the dependency graph forward.
#[derive(Debug, Clone)]
pub struct DnnTraffic {
    entries: Vec<TraceEntry>,
    offsets: Vec<u64>,
    dependents: Vec<Vec<u32>>,
    remaining_deps: Vec<u32>,
    ready: Vec<VecDeque<u32>>,
    completed: usize,
}

/// Helper that accumulates trace entries and dependencies.
struct TraceBuilder {
    entries: Vec<TraceEntry>,
    deps: Vec<Vec<u32>>,
}

impl TraceBuilder {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            deps: Vec::new(),
        }
    }

    fn add(
        &mut self,
        master: usize,
        dst: usize,
        bytes: u64,
        kind: TransferKind,
        deps: Vec<u32>,
    ) -> u32 {
        let idx = self.entries.len() as u32;
        self.entries.push(TraceEntry {
            master,
            dst,
            bytes: bytes.max(1),
            kind,
        });
        self.deps.push(deps);
        idx
    }
}

impl DnnTraffic {
    /// Builds the trace for the configured workload.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero cores/tiles/steps, or an
    /// L2 node outside the core range when cores host the slaves).
    #[must_use]
    pub fn new(cfg: &DnnConfig) -> Self {
        assert!(cfg.cores >= 2, "need at least two cores");
        assert!(cfg.tiles >= 1 && cfg.steps >= 1);
        let layers = resnet34_layers(cfg.channel_scale);
        let mut b = TraceBuilder::new();
        match cfg.workload {
            DnnWorkload::ParallelConv => Self::build_parallel(cfg, &layers, &mut b),
            DnnWorkload::DistributedTraining => Self::build_training(cfg, &layers, &mut b),
            DnnWorkload::PipelinedConv => Self::build_pipeline(cfg, &layers, &mut b),
        }
        if cfg.replay {
            // Replay mode: keep only intra-core ordering (each core streams
            // its trace back-to-back, like the paper's pattern re-injection).
            let mut last_of_master: Vec<Option<u32>> = Vec::new();
            for (i, e) in b.entries.iter().enumerate() {
                if e.master >= last_of_master.len() {
                    last_of_master.resize(e.master + 1, None);
                }
                b.deps[i] = match last_of_master[e.master] {
                    Some(prev) => vec![prev],
                    None => Vec::new(),
                };
                last_of_master[e.master] = Some(i as u32);
            }
        }
        Self::from_builder(cfg, b)
    }

    fn from_builder(cfg: &DnnConfig, b: TraceBuilder) -> Self {
        let n = b.entries.len();
        let mut dependents = vec![Vec::new(); n];
        let mut remaining = vec![0u32; n];
        for (i, deps) in b.deps.iter().enumerate() {
            remaining[i] = deps.len() as u32;
            for &d in deps {
                dependents[d as usize].push(i as u32);
            }
        }
        let masters = b.entries.iter().map(|e| e.master).max().unwrap_or(0) + 1;
        let mut ready = vec![VecDeque::new(); masters];
        for (i, &r) in remaining.iter().enumerate() {
            if r == 0 {
                ready[b.entries[i].master].push_back(i as u32);
            }
        }
        let mut rng = Rng::new(cfg.seed);
        let offsets = b
            .entries
            .iter()
            .map(|e| {
                let max = cfg.region_size.saturating_sub(e.bytes);
                if max == 0 {
                    0
                } else {
                    rng.gen_range(max)
                }
            })
            .collect();
        Self {
            entries: b.entries,
            offsets,
            dependents,
            remaining_deps: remaining,
            ready,
            completed: 0,
        }
    }

    /// Layer-parallel inference: each layer tiled across all cores with a
    /// global barrier between layers (Fig. 7b).
    fn build_parallel(cfg: &DnnConfig, layers: &[ConvLayer], b: &mut TraceBuilder) {
        let p = cfg.cores as u64;
        let mut prev_writes: Vec<u32> = Vec::new();
        for _step in 0..cfg.steps {
            for layer in layers {
                let mut writes = Vec::with_capacity(cfg.cores);
                for core in 0..cfg.cores {
                    let barrier = prev_writes.clone();
                    let r_in = b.add(
                        core,
                        cfg.l2_node,
                        layer.ifmap_bytes() / p,
                        TransferKind::Read,
                        barrier.clone(),
                    );
                    let r_w = b.add(
                        core,
                        cfg.l2_node,
                        layer.weight_bytes(),
                        TransferKind::Read,
                        barrier,
                    );
                    let w_out = b.add(
                        core,
                        cfg.l2_node,
                        layer.ofmap_bytes() / p,
                        TransferKind::Write,
                        vec![r_in, r_w],
                    );
                    writes.push(w_out);
                }
                prev_writes = writes;
            }
        }
    }

    /// Distributed training: per-core forward/backward weight traffic from
    /// L2 plus a ring reduce-scatter + all-gather of gradients (Fig. 7a).
    fn build_training(cfg: &DnnConfig, layers: &[ConvLayer], b: &mut TraceBuilder) {
        let p = cfg.cores;
        let grad_bytes: u64 = layers.iter().map(ConvLayer::weight_bytes).sum();
        let chunk = (grad_bytes / p as u64).max(1);
        let mut last_of_core: Vec<Option<u32>> = vec![None; p];
        for _step in 0..cfg.steps {
            // Forward: input batch + per-layer weights, serialized per core.
            for (core, last_slot) in last_of_core.iter_mut().enumerate() {
                let dep = |l: Option<u32>| l.map(|d| vec![d]).unwrap_or_default();
                let mut last = *last_slot;
                let r_in = b.add(
                    core,
                    cfg.l2_node,
                    layers[0].ifmap_bytes(),
                    TransferKind::Read,
                    dep(last),
                );
                last = Some(r_in);
                for layer in layers {
                    let r = b.add(
                        core,
                        cfg.l2_node,
                        layer.weight_bytes(),
                        TransferKind::Read,
                        vec![last.unwrap()],
                    );
                    last = Some(r);
                }
                // Backward: weights again (transposed) per layer.
                for layer in layers.iter().rev() {
                    let r = b.add(
                        core,
                        cfg.l2_node,
                        layer.weight_bytes(),
                        TransferKind::Read,
                        vec![last.unwrap()],
                    );
                    last = Some(r);
                }
                *last_slot = last;
            }
            // Ring all-reduce: 2(P−1) steps of chunk writes to the next core.
            let mut prev_round: Vec<u32> = last_of_core.iter().map(|l| l.unwrap()).collect();
            for _round in 0..(2 * (p - 1)) {
                let mut this_round = Vec::with_capacity(p);
                for core in 0..p {
                    let next = (core + 1) % p;
                    let pred = (core + p - 1) % p;
                    // Depends on own previous round and on having received
                    // the predecessor's chunk from the previous round.
                    let deps = vec![prev_round[core], prev_round[pred]];
                    let w = b.add(core, next, chunk, TransferKind::Write, deps);
                    this_round.push(w);
                }
                prev_round = this_round;
            }
            for (last, &round) in last_of_core.iter_mut().zip(&prev_round) {
                *last = Some(round);
            }
        }
    }

    /// Depth-first pipeline: contiguous layer groups per core, image tiles
    /// streaming through neighbouring cores (Fig. 7c).
    fn build_pipeline(cfg: &DnnConfig, layers: &[ConvLayer], b: &mut TraceBuilder) {
        let p = cfg.cores;
        assert!(
            p <= layers.len(),
            "pipeline needs at least one layer per core"
        );
        let t_count = cfg.tiles as u64;
        // Balanced contiguous layer ranges: stage s owns
        // layers[s·L/p .. (s+1)·L/p), never empty for L ≥ p.
        let range = |s: usize| (s * layers.len() / p, (s + 1) * layers.len() / p);
        // Inter-stage tile: the *input* feature map of the next stage's
        // first layer (this accounts for pooling between layer groups —
        // e.g. the post-conv1 max-pool — which the sender applies before
        // shipping). The last stage writes its own final output to L2.
        let boundary_bytes: Vec<u64> = (0..p)
            .map(|s| {
                if s + 1 < p {
                    layers[range(s + 1).0].ifmap_bytes()
                } else {
                    layers[range(s).1 - 1].ofmap_bytes()
                }
            })
            .collect();
        // Weight preload per stage (skipped when weights are resident).
        let preload: Vec<Option<u32>> = (0..p)
            .map(|s| {
                if cfg.pipeline_weights_resident {
                    return None;
                }
                let (start, end) = range(s);
                let bytes: u64 = layers[start..end].iter().map(ConvLayer::weight_bytes).sum();
                Some(b.add(s, cfg.l2_node, bytes.max(1), TransferKind::Read, vec![]))
            })
            .collect();
        let mut prev_tile: Vec<Option<u32>> = vec![None; p + 1];
        for _step in 0..cfg.steps {
            for _tile in 0..cfg.tiles {
                // Stage 0 fetches an input tile from L2.
                let mut deps: Vec<u32> = preload[0].into_iter().collect();
                if let Some(d) = prev_tile[0] {
                    deps.push(d);
                }
                let r_in = b.add(
                    0,
                    cfg.l2_node,
                    layers[0].ifmap_bytes() / t_count,
                    TransferKind::Read,
                    deps,
                );
                prev_tile[0] = Some(r_in);
                // Each stage forwards its output tile to the next core's L1;
                // the last stage writes results back to L2.
                let mut upstream = r_in;
                for s in 0..p {
                    let dst = if s == p - 1 { cfg.l2_node } else { s + 1 };
                    let bytes = (boundary_bytes[s] / t_count).max(1);
                    let mut deps = vec![upstream];
                    deps.extend(preload[s]);
                    if let Some(d) = prev_tile[s + 1] {
                        deps.push(d);
                    }
                    let w = b.add(s, dst, bytes, TransferKind::Write, deps);
                    prev_tile[s + 1] = Some(w);
                    upstream = w;
                }
            }
        }
    }

    /// Total number of transfers in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes the trace moves.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Transfers completed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Trace fingerprint carried in the checkpoint header: a source-type
    /// tag plus the complete immutable trace — entries, offsets and the
    /// dependency graph — so a checkpoint only restores into the exact
    /// same workload.
    fn shape(&self) -> u64 {
        let mut e = Encoder::new(0, 0);
        e.byte(3); // source type: DNN trace
        e.usize(self.entries.len());
        for entry in &self.entries {
            e.usize(entry.master);
            e.usize(entry.dst);
            e.u64(entry.bytes);
            e.byte(match entry.kind {
                TransferKind::Read => 0,
                TransferKind::Write => 1,
                TransferKind::Copy { .. } => 2,
            });
        }
        for &o in &self.offsets {
            e.u64(o);
        }
        for deps in &self.dependents {
            e.usize(deps.len());
            for &d in deps {
                e.u32(d);
            }
        }
        e.usize(self.ready.len());
        e.digest()
    }

    /// The fallible core of `restore_state`: decodes into fresh vectors,
    /// validating every index against this trace's geometry, and commits
    /// only on full success.
    fn try_restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut d = Decoder::new(
            bytes,
            chkpt::SNAP_KIND,
            self.shape(),
            DecodeLimits::default(),
        )?;
        let completed = d.usize()?;
        if completed > self.entries.len() {
            return Err(corrupt("more completions than trace entries"));
        }
        let mut remaining = Vec::with_capacity(self.entries.len());
        for _ in 0..self.entries.len() {
            remaining.push(d.u32()?);
        }
        let mut ready: Vec<VecDeque<u32>> = vec![VecDeque::new(); self.ready.len()];
        let mut seen = vec![false; self.entries.len()];
        for (m, queue) in ready.iter_mut().enumerate() {
            let n = d.count("ready entries")?;
            for _ in 0..n {
                let idx = d.u32()?;
                let i = idx as usize;
                if i >= self.entries.len() {
                    return Err(corrupt("ready entry out of range"));
                }
                if self.entries[i].master != m {
                    return Err(corrupt("ready entry queued on the wrong master"));
                }
                if remaining[i] != 0 {
                    return Err(corrupt("ready entry with unmet dependencies"));
                }
                if seen[i] {
                    return Err(corrupt("ready entry queued twice"));
                }
                seen[i] = true;
                queue.push_back(idx);
            }
        }
        d.finish()?;
        self.completed = completed;
        self.remaining_deps = remaining;
        self.ready = ready;
        Ok(())
    }

    /// Fraction of trace bytes that move core-to-core (not touching L2),
    /// useful for validating the workload structure.
    #[must_use]
    pub fn core_to_core_fraction(&self, l2_node: usize) -> f64 {
        let total = self.total_bytes() as f64;
        let c2c: u64 = self
            .entries
            .iter()
            .filter(|e| e.dst != l2_node)
            .map(|e| e.bytes)
            .sum();
        c2c as f64 / total
    }
}

impl TrafficSource for DnnTraffic {
    fn poll(&mut self, master: usize, _now: Cycle) -> Option<Transfer> {
        let idx = *self.ready.get(master)?.front()?;
        self.ready[master].pop_front();
        let e = &self.entries[idx as usize];
        Some(Transfer {
            id: u64::from(idx),
            dst: e.dst,
            offset: self.offsets[idx as usize],
            bytes: e.bytes,
            kind: e.kind,
        })
    }

    fn on_complete(&mut self, _master: usize, id: u64, _now: Cycle) {
        self.completed += 1;
        let idx = id as usize;
        // Detach the dependency list while walking it (take/restore): no
        // second mutable borrow and — unlike the old per-retirement
        // `clone()` — no heap allocation on this hot path. The walk order
        // is the vec order either way, so resolution order is unchanged
        // (asserted by `take_restore_matches_clone_resolution_order`).
        let deps = std::mem::take(&mut self.dependents[idx]);
        for &d in &deps {
            let r = &mut self.remaining_deps[d as usize];
            *r -= 1;
            if *r == 0 {
                let m = self.entries[d as usize].master;
                self.ready[m].push_back(d);
            }
        }
        debug_assert!(
            self.dependents[idx].is_empty(),
            "dependency list repopulated during resolution"
        );
        self.dependents[idx] = deps;
    }

    fn is_done(&self) -> bool {
        self.completed == self.entries.len()
    }

    fn next_arrival(&self, now: Cycle) -> Horizon {
        // A trace is untimed: anything ready is pollable immediately, and
        // nothing else can become ready without an `on_complete` callback
        // — which a quiescent engine, having nothing in flight, will never
        // deliver. So the horizon is either "right now" or "never".
        if self.ready.iter().any(|q| !q.is_empty()) {
            Horizon::At(now)
        } else {
            Horizon::Never
        }
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new(chkpt::SNAP_KIND, self.shape());
        e.usize(self.completed);
        for &r in &self.remaining_deps {
            e.u32(r);
        }
        for queue in &self.ready {
            e.usize(queue.len());
            for &idx in queue {
                e.u32(idx);
            }
        }
        Some(e.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        self.try_restore(bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet34_has_34_layers() {
        let layers = resnet34_layers(1.0);
        assert_eq!(layers.len(), 34);
        // Unscaled stem: 7·7·3·64 weights.
        assert_eq!(layers[0].weight_bytes(), 7 * 7 * 3 * 64);
        // Final FC: 512 × 1000.
        assert_eq!(layers[33].weight_bytes(), 512 * 1000);
    }

    #[test]
    fn channel_shrink_reduces_sizes() {
        let full: u64 = resnet34_layers(1.0)
            .iter()
            .map(ConvLayer::weight_bytes)
            .sum();
        let shrunk: u64 = resnet34_layers(0.1)
            .iter()
            .map(ConvLayer::weight_bytes)
            .sum();
        assert!(shrunk < full / 10, "shrunk {shrunk} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "channel scale")]
    fn bad_scale_rejected() {
        let _ = resnet34_layers(0.0);
    }

    fn run_trace_to_completion(mut t: DnnTraffic) -> (usize, u64) {
        // Simulate instantaneous transfers: poll everything ready, complete
        // it, repeat. Terminates iff the dependency graph is acyclic.
        let mut now = 0;
        let masters = t.ready.len();
        let total = t.len();
        let mut guard = 0;
        while !t.is_done() {
            let mut progress = false;
            for m in 0..masters {
                while let Some(tr) = t.poll(m, now) {
                    t.on_complete(m, tr.id, now);
                    progress = true;
                }
            }
            assert!(progress, "dependency deadlock at {}/{total}", t.completed());
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000);
        }
        (t.completed(), t.total_bytes())
    }

    /// The pre-optimization resolver: clone the dependency list, then
    /// walk it — kept as the oracle the take/restore path must match.
    fn resolve_with_clone(t: &mut DnnTraffic, id: u64) {
        t.completed += 1;
        let deps = t.dependents[id as usize].clone();
        for d in deps {
            let r = &mut t.remaining_deps[d as usize];
            *r -= 1;
            if *r == 0 {
                let m = t.entries[d as usize].master;
                t.ready[m].push_back(d);
            }
        }
    }

    #[test]
    fn take_restore_matches_clone_resolution_order() {
        // Drive two identical traces through the same poll schedule: one
        // retires via the real (take/restore) `on_complete`, the other via
        // the clone-based oracle. The complete transfer sequence — ids in
        // poll order per master — must be identical, i.e. dependency
        // resolution order is unchanged by the allocation-free rewrite.
        for workload in [
            DnnWorkload::DistributedTraining,
            DnnWorkload::ParallelConv,
            DnnWorkload::PipelinedConv,
        ] {
            let cfg = DnnConfig {
                workload,
                ..DnnConfig::default()
            };
            let mut real = DnnTraffic::new(&cfg);
            let mut oracle = DnnTraffic::new(&cfg);
            let masters = real.ready.len();
            let mut real_seq = Vec::new();
            let mut oracle_seq = Vec::new();
            let mut guard = 0;
            while !real.is_done() || !oracle.is_done() {
                for m in 0..masters {
                    while let Some(tr) = real.poll(m, 0) {
                        real_seq.push(tr.id);
                        real.on_complete(m, tr.id, 0);
                    }
                    while let Some(tr) = oracle.poll(m, 0) {
                        oracle_seq.push(tr.id);
                        resolve_with_clone(&mut oracle, tr.id);
                    }
                }
                guard += 1;
                assert!(guard < 1_000_000, "{workload:?} wedged");
            }
            assert_eq!(real_seq, oracle_seq, "order diverged for {workload:?}");
            assert!(!real_seq.is_empty());
        }
    }

    #[test]
    fn parallel_trace_completes_acyclically() {
        let cfg = DnnConfig {
            workload: DnnWorkload::ParallelConv,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let n = t.len();
        assert_eq!(n, 34 * 16 * 3);
        let (done, bytes) = run_trace_to_completion(t);
        assert_eq!(done, n);
        assert!(bytes > 0);
    }

    #[test]
    fn training_trace_completes_acyclically() {
        let cfg = DnnConfig {
            workload: DnnWorkload::DistributedTraining,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let (done, _) = run_trace_to_completion(t.clone());
        assert_eq!(done, t.len());
    }

    #[test]
    fn pipeline_trace_completes_acyclically() {
        let cfg = DnnConfig {
            workload: DnnWorkload::PipelinedConv,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let (done, _) = run_trace_to_completion(t.clone());
        assert_eq!(done, t.len());
    }

    #[test]
    fn parallel_conv_is_pure_l2_traffic() {
        let cfg = DnnConfig {
            workload: DnnWorkload::ParallelConv,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        assert_eq!(t.core_to_core_fraction(cfg.l2_node), 0.0);
    }

    #[test]
    fn pipeline_is_mostly_core_to_core() {
        // In steady state (weight preload amortized over several images)
        // the pipeline is predominantly L1→L1 neighbour traffic (Fig. 7c).
        let cfg = DnnConfig {
            workload: DnnWorkload::PipelinedConv,
            steps: 8,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        // The unshrunk 3-channel 224×224 input image keeps the L2 share
        // substantial even in steady state, but the core-to-core share must
        // dominate every *inter-stage* link and be the largest single
        // category. It must also far exceed the other workloads' shares.
        let pipe = t.core_to_core_fraction(cfg.l2_node);
        assert!(pipe > 0.35, "fraction {pipe}");
        let par = DnnTraffic::new(&DnnConfig {
            workload: DnnWorkload::ParallelConv,
            steps: 8,
            ..DnnConfig::default()
        })
        .core_to_core_fraction(cfg.l2_node);
        assert!(pipe > par + 0.3, "pipe {pipe} vs par {par}");
    }

    #[test]
    fn training_mixes_l2_and_core_traffic() {
        let cfg = DnnConfig {
            workload: DnnWorkload::DistributedTraining,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let f = t.core_to_core_fraction(cfg.l2_node);
        assert!(f > 0.05 && f < 0.95, "fraction {f}");
    }

    #[test]
    fn trace_volumes_match_analytic_model() {
        // Parallel conv moves, per step: every layer's weights once per
        // core, plus ifmap/16 and ofmap/16 per core (= full ifmap + ofmap
        // across 16 cores).
        let cfg = DnnConfig {
            workload: DnnWorkload::ParallelConv,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let layers = resnet34_layers(cfg.channel_scale);
        let p = cfg.cores as u64;
        let expected: u64 = layers
            .iter()
            .map(|l| p * l.weight_bytes() + p * (l.ifmap_bytes() / p) + p * (l.ofmap_bytes() / p))
            .sum();
        assert_eq!(t.total_bytes(), expected);
    }

    #[test]
    fn training_trace_reduces_full_gradient_twice() {
        // Ring all-reduce = reduce-scatter + all-gather = 2(P−1) rounds of
        // G/P chunk writes per core → 2(P−1) · G core-to-core bytes.
        let cfg = DnnConfig {
            workload: DnnWorkload::DistributedTraining,
            ..DnnConfig::default()
        };
        let t = DnnTraffic::new(&cfg);
        let layers = resnet34_layers(cfg.channel_scale);
        let grad: u64 = layers.iter().map(ConvLayer::weight_bytes).sum();
        let p = cfg.cores as u64;
        // One write per round targets the node that also hosts L2 (node 6)
        // and is therefore not counted as core-to-core: p−1 counted writes
        // per round, 2(p−1) rounds.
        let c2c: u64 = 2 * (p - 1) * (p - 1) * (grad / p);
        let measured =
            (t.total_bytes() as f64 * t.core_to_core_fraction(cfg.l2_node)).round() as u64;
        assert!(
            measured.abs_diff(c2c) <= 2,
            "measured {measured} vs analytic {c2c}"
        );
    }

    #[test]
    fn replay_mode_has_linear_per_core_chains() {
        // In replay mode a core's transfers depend only on its own
        // predecessor: polling any single master drains its whole share
        // without any cross-core completions.
        let cfg = DnnConfig {
            workload: DnnWorkload::PipelinedConv,
            ..DnnConfig::default()
        };
        let mut t = DnnTraffic::new(&cfg);
        let mut drained = 0;
        while let Some(tr) = t.poll(3, 0) {
            t.on_complete(3, tr.id, 0);
            drained += 1;
        }
        // Core 3 owns exactly tiles × steps transfers.
        assert_eq!(drained, cfg.tiles * cfg.steps);
    }

    #[test]
    fn dependency_mode_blocks_downstream_stages() {
        // With replay off, stage 3's first write needs stage 2's data:
        // polling master 3 alone yields nothing.
        let cfg = DnnConfig {
            workload: DnnWorkload::PipelinedConv,
            replay: false,
            ..DnnConfig::default()
        };
        let mut t = DnnTraffic::new(&cfg);
        assert!(t.poll(3, 0).is_none());
        // But stage 0's input fetch is ready immediately.
        assert!(t.poll(0, 0).is_some());
    }

    #[test]
    fn multi_step_scales_trace() {
        let one = DnnTraffic::new(&DnnConfig::default());
        let two = DnnTraffic::new(&DnnConfig {
            steps: 2,
            ..DnnConfig::default()
        });
        assert_eq!(two.len(), 2 * one.len());
    }

    #[test]
    fn workload_names_match_paper_legend() {
        assert_eq!(DnnWorkload::DistributedTraining.name(), "Train");
        assert_eq!(DnnWorkload::ParallelConv.name(), "Par Conv");
        assert_eq!(DnnWorkload::PipelinedConv.name(), "Pipe Conv");
    }

    /// Drive a trace instantaneously for `rounds` sweeps over all masters.
    fn advance(t: &mut DnnTraffic, rounds: usize) {
        let masters = t.ready.len();
        for _ in 0..rounds {
            for m in 0..masters {
                if let Some(tr) = t.poll(m, 0) {
                    t.on_complete(m, tr.id, 0);
                }
            }
        }
    }

    #[test]
    fn next_arrival_tracks_ready_work() {
        let mut t = DnnTraffic::new(&DnnConfig::default());
        // Fresh trace: roots are ready on every core.
        assert_eq!(t.next_arrival(5), Horizon::At(5));
        // Drain everything pollable without completing: all queues empty,
        // all remaining work gated on completions → Never.
        for m in 0..t.ready.len() {
            while t.poll(m, 0).is_some() {}
        }
        assert!(!t.is_done());
        assert_eq!(t.next_arrival(9), Horizon::Never);
    }

    #[test]
    fn checkpoint_restore_reproduces_the_future_trace() {
        let cfg = DnnConfig::default();
        let mut t = DnnTraffic::new(&cfg);
        advance(&mut t, 40);
        assert!(t.completed() > 0 && !t.is_done(), "capture mid-trace");
        let bytes = t.snapshot_state().expect("traces checkpoint");
        let mut restored = DnnTraffic::new(&cfg);
        assert!(restored.restore_state(&bytes));
        assert_eq!(restored.completed(), t.completed());
        while !t.is_done() {
            for m in 0..t.ready.len() {
                let (a, b) = (t.poll(m, 0), restored.poll(m, 0));
                assert_eq!(a, b);
                if let Some(tr) = a {
                    t.on_complete(m, tr.id, 0);
                    restored.on_complete(m, tr.id, 0);
                }
            }
        }
        assert!(restored.is_done());
    }

    #[test]
    fn checkpoint_from_a_different_trace_refused() {
        let t = DnnTraffic::new(&DnnConfig::default());
        let bytes = t.snapshot_state().unwrap();
        let mut other = DnnTraffic::new(&DnnConfig {
            steps: 2,
            ..DnnConfig::default()
        });
        assert!(!other.restore_state(&bytes));
        // Corruption within a matching trace is caught by the digest.
        let mut same = DnnTraffic::new(&DnnConfig::default());
        let mut bad = bytes;
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let before = same.snapshot_state().unwrap();
        assert!(!same.restore_state(&bad));
        assert_eq!(same.snapshot_state().unwrap(), before);
    }
}
