//! Synthetic locality-controlled traffic patterns (paper Fig. 5, Fig. 6).
//!
//! Three patterns on an N×M mesh, with masters at every node:
//!
//! * **All global access** — every master targets a *single* slave endpoint
//!   near the mesh center (endpoint (2,1) on the 4×4 mesh), modelling a
//!   single shared memory tile.
//! * **Max two-hop access** — slaves at the four center endpoints
//!   ((1,1), (1,2), (2,1), (2,2) on 4×4), modelling distributed shared
//!   L2/L1; each master only targets slaves at most two hops away.
//! * **Max single-hop access** — slaves at the eight edge (non-corner)
//!   endpoints; each master only targets slaves at most one hop away,
//!   modelling DNN schedules that place communicating kernels on nearby
//!   cores.
//!
//! Plus the two classical address-mapped stress patterns (transpose,
//! bit-complement) and a skewed **hotspot** pattern (slaves everywhere,
//! a configurable share of transfers aimed at one central node).
//!
//! Transfer lengths and arrival timing use the same randomized-burst Poisson
//! process as [`crate::uniform`].

use crate::chkpt;
use crate::source::{arrival_horizon, TrafficSource, Transfer, TransferKind};
use simkit::snap::{DecodeLimits, Decoder, Encoder};
use simkit::{Cycle, Horizon, Rng};

/// The synthetic access patterns: the three locality-controlled patterns
/// of Fig. 5 plus the two classical address-mapped NoC stress patterns
/// (transpose, bit-complement) used by mesh evaluations since the SPIN /
/// Noxim era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticPattern {
    /// All masters → one central slave.
    AllGlobal,
    /// Four central slaves, destinations at most two hops away.
    MaxTwoHop,
    /// Eight edge slaves, destinations at most one hop away.
    MaxSingleHop,
    /// Master `(x, y)` → slave `(y, x)`: the matrix-transpose pattern.
    /// Deterministic destinations; needs a square mesh. Diagonal nodes
    /// target themselves (local-port traffic).
    Transpose,
    /// Master `m` → slave `n − 1 − m`: every transfer crosses the mesh
    /// center — the worst-case bisection stress pattern.
    BitComplement,
    /// Hotspot: slaves at every node, but each transfer targets the
    /// central hot node (the [`AllGlobal`](Self::AllGlobal) slave) with
    /// probability `skew_pct`%, and a uniformly random node otherwise —
    /// the ROADMAP's "heavy traffic on one slave" skewed workload.
    /// `skew_pct` must be in `1..=100`; 100 degenerates to
    /// [`AllGlobal`](Self::AllGlobal) with extra idle slaves.
    Hotspot {
        /// Percent of transfers aimed at the hot node (`1..=100`).
        skew_pct: u8,
    },
}

impl SyntheticPattern {
    /// The slave endpoints this pattern instantiates on a `cols`×`rows`
    /// mesh (node index = `y * cols + x`).
    ///
    /// # Panics
    ///
    /// Panics if the mesh is smaller than 3×3 (the edge/center structure of
    /// the patterns needs at least that), or for [`Transpose`](Self::Transpose)
    /// on a non-square mesh.
    #[must_use]
    pub fn slave_nodes(self, cols: usize, rows: usize) -> Vec<usize> {
        assert!(cols >= 3 && rows >= 3, "pattern needs at least a 3x3 mesh");
        self.validate();
        if self == Self::Transpose {
            assert_eq!(cols, rows, "transpose needs a square mesh");
        }
        // The address-mapped patterns are bijections, and the hotspot's
        // cold side is mesh-wide: every node receives.
        if matches!(
            self,
            Self::Transpose | Self::BitComplement | Self::Hotspot { .. }
        ) {
            return (0..cols * rows).collect();
        }
        let node = |x: usize, y: usize| y * cols + x;
        match self {
            Self::AllGlobal => vec![node(cols / 2, (rows - 1) / 2)],
            Self::MaxTwoHop => {
                let xs = [(cols - 1) / 2, cols / 2];
                let ys = [(rows - 1) / 2, rows / 2];
                let mut v: Vec<usize> = ys
                    .iter()
                    .flat_map(|&y| xs.iter().map(move |&x| node(x, y)))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            Self::MaxSingleHop => {
                let mut v = Vec::new();
                for y in 0..rows {
                    for x in 0..cols {
                        let on_edge = x == 0 || y == 0 || x == cols - 1 || y == rows - 1;
                        let corner = (x == 0 || x == cols - 1) && (y == 0 || y == rows - 1);
                        if on_edge && !corner {
                            v.push(node(x, y));
                        }
                    }
                }
                v
            }
            Self::Transpose | Self::BitComplement | Self::Hotspot { .. } => {
                unreachable!("returned above")
            }
        }
    }

    /// Validates the pattern's parameters (the skew of a
    /// [`Hotspot`](Self::Hotspot) must be a percentage in `1..=100`).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range skew.
    pub fn validate(self) {
        if let Self::Hotspot { skew_pct } = self {
            assert!(
                (1..=100).contains(&skew_pct),
                "hotspot skew must be in 1..=100 percent, got {skew_pct}"
            );
        }
    }

    /// The hot node of a [`Hotspot`](Self::Hotspot) pattern — the same
    /// central endpoint [`AllGlobal`](Self::AllGlobal) uses as its single
    /// slave; `None` for every other pattern.
    #[must_use]
    pub fn hot_node(self, cols: usize, rows: usize) -> Option<usize> {
        match self {
            Self::Hotspot { .. } => Some(((rows - 1) / 2) * cols + cols / 2),
            _ => None,
        }
    }

    /// The hop-distance restriction the pattern imposes on destination
    /// choice (`None` = unrestricted).
    #[must_use]
    pub fn max_hops(self) -> Option<u32> {
        match self {
            Self::AllGlobal | Self::Transpose | Self::BitComplement | Self::Hotspot { .. } => None,
            Self::MaxTwoHop => Some(2),
            Self::MaxSingleHop => Some(1),
        }
    }

    /// The single deterministic destination of `master` under the
    /// address-mapped patterns; `None` for the randomized Fig. 5 patterns,
    /// whose destinations draw from an eligible set per transfer.
    #[must_use]
    pub fn fixed_destination(self, cols: usize, rows: usize, master: usize) -> Option<usize> {
        match self {
            Self::Transpose => {
                // (x, y) → (y, x): destination node = x·cols + y.
                let (x, y) = (master % cols, master / cols);
                Some(x * cols + y)
            }
            Self::BitComplement => Some(cols * rows - 1 - master),
            Self::AllGlobal | Self::MaxTwoHop | Self::MaxSingleHop | Self::Hotspot { .. } => None,
        }
    }
}

/// Configuration for [`SyntheticTraffic`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Mesh width.
    pub cols: usize,
    /// Mesh height.
    pub rows: usize,
    /// Which Fig. 5 pattern to generate.
    pub pattern: SyntheticPattern,
    /// Injected load in `(0, 1]` (1.0 = "maximum injected load", Fig. 6).
    pub load: f64,
    /// Payload bytes per beat (DW/8); defines load 1.0.
    pub bytes_per_cycle: f64,
    /// Maximum DMA transfer length in bytes.
    pub max_transfer: u64,
    /// Fraction of reads.
    pub read_fraction: f64,
    /// Per-endpoint address region size.
    pub region_size: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Synthetic pattern generator; masters at every mesh node.
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    cfg: SyntheticConfig,
    /// Eligible destination list per master.
    eligible: Vec<Vec<usize>>,
    per_master: Vec<(Rng, f64, u64)>, // (rng, next_arrival, serial)
    mean_gap: f64,
}

fn hop_distance(cols: usize, a: usize, b: usize) -> u32 {
    let (ax, ay) = (a % cols, a / cols);
    let (bx, by) = (b % cols, b / cols);
    (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
}

impl SyntheticTraffic {
    /// Creates the generator, computing each master's eligible destination
    /// set from the pattern's slave placement and hop restriction.
    ///
    /// # Panics
    ///
    /// Panics if a master ends up with no eligible destination (cannot
    /// happen for meshes ≥ 3×3 with the built-in patterns) or if the
    /// configuration is degenerate.
    #[must_use]
    pub fn new(cfg: SyntheticConfig) -> Self {
        assert!(cfg.load > 0.0 && cfg.max_transfer > 0);
        cfg.pattern.validate();
        let n = cfg.cols * cfg.rows;
        let slaves = cfg.pattern.slave_nodes(cfg.cols, cfg.rows);
        let eligible: Vec<Vec<usize>> = (0..n)
            .map(|m| {
                let list: Vec<usize> = match cfg.pattern.fixed_destination(cfg.cols, cfg.rows, m) {
                    // Address-mapped pattern: exactly one destination.
                    Some(d) => vec![d],
                    None => slaves
                        .iter()
                        .copied()
                        .filter(|&s| match cfg.pattern.max_hops() {
                            None => true,
                            Some(h) => hop_distance(cfg.cols, m, s) <= h,
                        })
                        .collect(),
                };
                assert!(!list.is_empty(), "master {m} has no eligible slave");
                list
            })
            .collect();
        let mean_size = (1.0 + cfg.max_transfer as f64) / 2.0;
        let mean_gap = mean_size / (cfg.load * cfg.bytes_per_cycle);
        let root = Rng::new(cfg.seed);
        let per_master = (0..n)
            .map(|m| {
                let mut rng = root.fork(m as u64 + 1);
                let first = rng.gen_f64() * mean_gap;
                (rng, first, 0u64)
            })
            .collect();
        Self {
            cfg,
            eligible,
            per_master,
            mean_gap,
        }
    }

    /// The slave endpoints instantiated by this configuration.
    #[must_use]
    pub fn slave_nodes(&self) -> Vec<usize> {
        self.cfg.pattern.slave_nodes(self.cfg.cols, self.cfg.rows)
    }

    /// Eligible destinations of one master.
    #[must_use]
    pub fn eligible(&self, master: usize) -> &[usize] {
        &self.eligible[master]
    }

    /// Configuration fingerprint carried in the checkpoint header: a
    /// source-type tag plus every field that shapes the generated stream
    /// (the eligible sets derive from pattern and mesh dimensions).
    fn shape(&self) -> u64 {
        let cfg = &self.cfg;
        let mut e = Encoder::new(0, 0);
        e.byte(2); // source type: synthetic pattern
        e.usize(cfg.cols);
        e.usize(cfg.rows);
        match cfg.pattern {
            SyntheticPattern::AllGlobal => e.byte(0),
            SyntheticPattern::MaxTwoHop => e.byte(1),
            SyntheticPattern::MaxSingleHop => e.byte(2),
            SyntheticPattern::Transpose => e.byte(3),
            SyntheticPattern::BitComplement => e.byte(4),
            SyntheticPattern::Hotspot { skew_pct } => {
                e.byte(5);
                e.byte(skew_pct);
            }
        }
        e.f64(cfg.load);
        e.f64(cfg.bytes_per_cycle);
        e.u64(cfg.max_transfer);
        e.f64(cfg.read_fraction);
        e.u64(cfg.region_size);
        e.u64(cfg.seed);
        e.digest()
    }
}

impl TrafficSource for SyntheticTraffic {
    fn poll(&mut self, master: usize, now: Cycle) -> Option<Transfer> {
        let (rng, next_arrival, serial) = &mut self.per_master[master];
        if *next_arrival > now as f64 {
            return None;
        }
        let u = rng.gen_f64().max(f64::MIN_POSITIVE);
        *next_arrival += -u.ln() * self.mean_gap;
        let bytes = rng.gen_range_inclusive(1, self.cfg.max_transfer);
        let list = &self.eligible[master];
        let hot = match self.cfg.pattern {
            SyntheticPattern::Hotspot { skew_pct } => rng
                .gen_bool(f64::from(skew_pct) / 100.0)
                .then(|| self.cfg.pattern.hot_node(self.cfg.cols, self.cfg.rows))
                .flatten(),
            _ => None,
        };
        let dst = match hot {
            Some(node) => node,
            None => list[rng.gen_range(list.len() as u64) as usize],
        };
        let max_offset = self.cfg.region_size.saturating_sub(bytes);
        let offset = if max_offset == 0 {
            0
        } else {
            rng.gen_range(max_offset)
        };
        let kind = if rng.gen_bool(self.cfg.read_fraction) {
            TransferKind::Read
        } else {
            TransferKind::Write
        };
        *serial += 1;
        Some(Transfer {
            id: (master as u64) << 48 | *serial,
            dst,
            offset,
            bytes,
            kind,
        })
    }

    fn next_arrival(&self, _now: Cycle) -> Horizon {
        // Like `UniformRandom`, each master's Poisson clock is
        // materialized eagerly, so the horizon is a pure read of the
        // earliest clock — no random stream is touched.
        self.per_master
            .iter()
            .map(|(_, next_arrival, _)| arrival_horizon(*next_arrival))
            .fold(Horizon::Never, Horizon::min)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new(chkpt::SNAP_KIND, self.shape());
        for (rng, next_arrival, serial) in &self.per_master {
            chkpt::encode_master(&mut e, rng, *next_arrival, *serial);
        }
        Some(e.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Ok(mut d) = Decoder::new(
            bytes,
            chkpt::SNAP_KIND,
            self.shape(),
            DecodeLimits::default(),
        ) else {
            return false;
        };
        let mut fresh = Vec::with_capacity(self.per_master.len());
        for _ in &self.per_master {
            let Ok(state) = chkpt::decode_master(&mut d) else {
                return false;
            };
            fresh.push(state);
        }
        if d.finish().is_err() {
            return false;
        }
        self.per_master = fresh;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pattern: SyntheticPattern) -> SyntheticConfig {
        SyntheticConfig {
            cols: 4,
            rows: 4,
            pattern,
            load: 1.0,
            bytes_per_cycle: 4.0,
            max_transfer: 1000,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed: 11,
        }
    }

    #[test]
    fn all_global_single_center_slave() {
        // Paper: endpoint (2, 1) on the 4×4 mesh.
        let slaves = SyntheticPattern::AllGlobal.slave_nodes(4, 4);
        assert_eq!(slaves, vec![6]); // (x=2, y=1) → 1·4 + 2
    }

    #[test]
    fn two_hop_center_four() {
        // Paper: (1,1), (1,2), (2,1), (2,2).
        let slaves = SyntheticPattern::MaxTwoHop.slave_nodes(4, 4);
        assert_eq!(slaves, vec![5, 6, 9, 10]);
    }

    #[test]
    fn single_hop_eight_edges() {
        let slaves = SyntheticPattern::MaxSingleHop.slave_nodes(4, 4);
        assert_eq!(slaves, vec![1, 2, 4, 7, 8, 11, 13, 14]);
    }

    #[test]
    fn two_hop_destinations_within_two_hops() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::MaxTwoHop));
        for m in 0..16 {
            for &d in src.eligible(m) {
                assert!(hop_distance(4, m, d) <= 2, "master {m} → {d}");
            }
        }
    }

    #[test]
    fn single_hop_destinations_within_one_hop() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::MaxSingleHop));
        for m in 0..16 {
            assert!(!src.eligible(m).is_empty());
        }
        for now in 0..1000 {
            for m in 0..16 {
                while let Some(t) = src.poll(m, now) {
                    assert!(hop_distance(4, m, t.dst) <= 1);
                }
            }
        }
    }

    #[test]
    fn all_global_targets_only_center() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::AllGlobal));
        for now in 0..200 {
            for m in 0..16 {
                while let Some(t) = src.poll(m, now) {
                    assert_eq!(t.dst, 6);
                }
            }
        }
    }

    #[test]
    fn corner_master_has_single_hop_choice() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::MaxSingleHop));
        // Corner (0,0) = node 0: neighbors (1,0)=1 and (0,1)=4 are slaves.
        let mut e = src.eligible(0).to_vec();
        e.sort_unstable();
        assert_eq!(e, vec![1, 4]);
    }

    #[test]
    fn slave_node_itself_allowed_in_single_hop() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::MaxSingleHop));
        // Node 1 hosts a slave; distance 0 ≤ 1, so it may target itself
        // (local-port traffic, Fig. 5 inset).
        assert!(src.eligible(1).contains(&1));
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_mesh_rejected() {
        let _ = SyntheticPattern::AllGlobal.slave_nodes(2, 2);
    }

    #[test]
    fn transpose_mirrors_coordinates() {
        // Every node is a slave, and master (x, y) targets exactly (y, x).
        assert_eq!(
            SyntheticPattern::Transpose.slave_nodes(4, 4),
            (0..16).collect::<Vec<_>>()
        );
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::Transpose));
        assert_eq!(src.eligible(1), &[4]); // (1,0) → (0,1)
        assert_eq!(src.eligible(7), &[13]); // (3,1) → (1,3)
        assert_eq!(src.eligible(5), &[5]); // diagonal: self-traffic
        for m in 0..16 {
            let (x, y) = (m % 4, m / 4);
            assert_eq!(src.eligible(m), &[x * 4 + y]);
        }
    }

    #[test]
    fn bit_complement_crosses_the_center() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::BitComplement));
        for m in 0..16 {
            assert_eq!(src.eligible(m), &[15 - m]);
        }
        // Every transfer spans the full mesh diagonal distance from its
        // master: (x, y) → (3−x, 3−y).
        assert_eq!(hop_distance(4, 0, 15), 6);
    }

    #[test]
    fn transpose_traffic_only_emits_partner_destinations() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::Transpose));
        for now in 0..200 {
            for m in 0..16 {
                while let Some(t) = src.poll(m, now) {
                    let (x, y) = (m % 4, m / 4);
                    assert_eq!(t.dst, x * 4 + y);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_rectangular_meshes() {
        let _ = SyntheticPattern::Transpose.slave_nodes(4, 3);
    }

    #[test]
    fn hotspot_slaves_everywhere_hot_node_at_the_center() {
        let p = SyntheticPattern::Hotspot { skew_pct: 70 };
        assert_eq!(p.slave_nodes(4, 4), (0..16).collect::<Vec<_>>());
        // Same center endpoint AllGlobal uses: (x=2, y=1) → 6 on 4×4.
        assert_eq!(p.hot_node(4, 4), Some(6));
        assert_eq!(SyntheticPattern::AllGlobal.hot_node(4, 4), None);
        assert_eq!(p.max_hops(), None);
        assert_eq!(p.fixed_destination(4, 4, 3), None);
    }

    #[test]
    fn hotspot_skew_concentrates_traffic_on_the_hot_node() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 70 }));
        let mut hot = 0u64;
        let mut total = 0u64;
        for now in 0..20_000 {
            for m in 0..16 {
                while let Some(t) = src.poll(m, now) {
                    total += 1;
                    if t.dst == 6 {
                        hot += 1;
                    }
                }
            }
        }
        assert!(total > 1_000, "expected a busy stream, got {total}");
        // 70% aimed draws plus 1/16 of the uniform remainder ≈ 0.719.
        let frac = hot as f64 / total as f64;
        assert!(
            (0.65..0.78).contains(&frac),
            "hot fraction {frac} off the 70% skew"
        );
    }

    #[test]
    fn hotspot_cold_side_covers_the_whole_mesh() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 30 }));
        let mut seen = [false; 16];
        for now in 0..5_000 {
            for m in 0..16 {
                while let Some(t) = src.poll(m, now) {
                    seen[t.dst] = true;
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "cold destinations missing: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "skew must be in 1..=100")]
    fn hotspot_zero_skew_rejected() {
        let _ = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 0 }));
    }

    #[test]
    #[should_panic(expected = "skew must be in 1..=100")]
    fn hotspot_overfull_skew_rejected_at_placement() {
        let _ = SyntheticPattern::Hotspot { skew_pct: 101 }.slave_nodes(4, 4);
    }

    #[test]
    fn hotspot_checkpoints_are_skew_specific() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 70 }));
        let bytes = src.snapshot_state().unwrap();
        let mut other = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 71 }));
        assert!(!other.restore_state(&bytes), "skew is part of the shape");
        let mut same = SyntheticTraffic::new(cfg(SyntheticPattern::Hotspot { skew_pct: 70 }));
        assert!(same.restore_state(&bytes));
    }

    #[test]
    fn next_arrival_bounds_the_first_poll() {
        let mut c = cfg(SyntheticPattern::Hotspot { skew_pct: 50 });
        c.load = 0.001;
        let mut src = SyntheticTraffic::new(c);
        // Drain cycle 0, then the horizon must be future-dated and no poll
        // may fire before it.
        for m in 0..16 {
            while src.poll(m, 0).is_some() {}
        }
        let Horizon::At(h) = src.next_arrival(0) else {
            panic!("open-loop source is never exhausted")
        };
        assert!(h > 0, "post-drain horizon must be in the future");
        for now in 1..h.min(200) {
            for m in 0..16 {
                assert_eq!(src.poll(m, now), None, "early fire at {now}");
            }
        }
    }

    #[test]
    fn checkpoint_restore_reproduces_the_future_stream() {
        let mut src = SyntheticTraffic::new(cfg(SyntheticPattern::MaxTwoHop));
        for now in 0..300 {
            for m in 0..16 {
                while src.poll(m, now).is_some() {}
            }
        }
        let bytes = src.snapshot_state().expect("synthetic sources checkpoint");
        let mut restored = SyntheticTraffic::new(cfg(SyntheticPattern::MaxTwoHop));
        assert!(restored.restore_state(&bytes));
        for now in 300..800 {
            for m in 0..16 {
                loop {
                    let (a, b) = (src.poll(m, now), restored.poll(m, now));
                    assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn checkpoint_from_a_different_pattern_refused() {
        let src = SyntheticTraffic::new(cfg(SyntheticPattern::AllGlobal));
        let bytes = src.snapshot_state().unwrap();
        let mut other = SyntheticTraffic::new(cfg(SyntheticPattern::Transpose));
        let before = other.snapshot_state().unwrap();
        assert!(!other.restore_state(&bytes));
        assert_eq!(other.snapshot_state().unwrap(), before);
    }
}
