//! Uniform random traffic with Poisson arrivals (paper Fig. 4).
//!
//! Every master injects transfers whose destination is uniformly random
//! among the slave endpoints (excluding itself), whose length is uniformly
//! random in `[1, max_transfer]` bytes ("the workload-specific burst length
//! is randomized within a user-defined range", §IV) and whose arrival
//! process is Poisson with a rate set by the *injected load*: at load 1.0 a
//! master offers one full data-bus-width of payload per cycle.

use crate::chkpt;
use crate::source::{arrival_horizon, TrafficSource, Transfer, TransferKind};
use simkit::snap::{DecodeLimits, Decoder, Encoder};
use simkit::{Cycle, Horizon, Rng};

/// Configuration for [`UniformRandom`].
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Number of master endpoints (indexed `0..masters`).
    pub masters: usize,
    /// Endpoint indices that host addressable slaves.
    pub slaves: Vec<usize>,
    /// Injected load in `(0, 1]`: fraction of one bus width of payload
    /// offered per cycle per master.
    pub load: f64,
    /// Payload bytes one data beat carries (DW/8); defines load 1.0.
    pub bytes_per_cycle: f64,
    /// Maximum DMA transfer (burst) length in bytes; lengths are uniform in
    /// `[1, max_transfer]`.
    pub max_transfer: u64,
    /// Fraction of transfers that are reads (the rest are writes). Ignored
    /// when `copies` is set.
    pub read_fraction: f64,
    /// Size of each slave's address region (offsets are kept in range).
    pub region_size: u64,
    /// RNG seed; a (seed, config) pair fully determines the workload.
    pub seed: u64,
}

#[derive(Debug, Clone)]
struct MasterState {
    rng: Rng,
    /// Fractional next-arrival time (cycles).
    next_arrival: f64,
    serial: u64,
}

/// Poisson uniform-random transfer generator.
///
/// See the [module documentation](self) and [`UniformConfig`].
#[derive(Debug, Clone)]
pub struct UniformRandom {
    cfg: UniformConfig,
    per_master: Vec<MasterState>,
    mean_gap: f64,
    copies: bool,
}

impl UniformRandom {
    /// Creates a generator of memory-to-memory copies: each transfer has a
    /// random *source and* destination slave (the paper's Fig. 4 DMA
    /// semantics — payload crosses the NoC twice, is counted once).
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally needs at least two slaves.
    #[must_use]
    pub fn new_copies(cfg: UniformConfig) -> Self {
        assert!(cfg.slaves.len() >= 2, "copies need two distinct slaves");
        let mut s = Self::new(cfg);
        s.copies = true;
        s
    }

    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no masters, no slaves,
    /// non-positive load, or zero `max_transfer`).
    #[must_use]
    pub fn new(cfg: UniformConfig) -> Self {
        assert!(cfg.masters > 0, "need at least one master");
        assert!(!cfg.slaves.is_empty(), "need at least one slave");
        assert!(cfg.load > 0.0, "load must be positive");
        assert!(cfg.max_transfer > 0, "max transfer must be positive");
        assert!(
            cfg.max_transfer <= cfg.region_size,
            "transfers must fit in a region"
        );
        let mean_size = (1.0 + cfg.max_transfer as f64) / 2.0;
        // Offered bytes/cycle = load × bytes_per_cycle = mean_size / mean_gap.
        let mean_gap = mean_size / (cfg.load * cfg.bytes_per_cycle);
        let root = Rng::new(cfg.seed);
        let per_master = (0..cfg.masters)
            .map(|m| {
                let mut rng = root.fork(m as u64 + 1);
                // Desynchronize the first arrivals.
                let first = rng.gen_f64() * mean_gap;
                MasterState {
                    rng,
                    next_arrival: first,
                    serial: 0,
                }
            })
            .collect();
        Self {
            cfg,
            per_master,
            mean_gap,
            copies: false,
        }
    }

    /// The mean inter-arrival gap in cycles implied by the configuration.
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        self.mean_gap
    }

    /// Configuration fingerprint carried in the checkpoint header: a
    /// source-type tag plus every field that shapes the generated stream.
    fn shape(&self) -> u64 {
        let cfg = &self.cfg;
        let mut e = Encoder::new(0, 0);
        e.byte(1); // source type: uniform random
        e.usize(cfg.masters);
        e.usize(cfg.slaves.len());
        for &s in &cfg.slaves {
            e.usize(s);
        }
        e.f64(cfg.load);
        e.f64(cfg.bytes_per_cycle);
        e.u64(cfg.max_transfer);
        e.f64(cfg.read_fraction);
        e.u64(cfg.region_size);
        e.u64(cfg.seed);
        e.bool(self.copies);
        e.digest()
    }

    fn pick_dst(cfg: &UniformConfig, rng: &mut Rng, master: usize) -> usize {
        // Uniform over slaves, excluding the master's own node when present.
        loop {
            let idx = rng.gen_range(cfg.slaves.len() as u64) as usize;
            let dst = cfg.slaves[idx];
            if dst != master || cfg.slaves.len() == 1 {
                return dst;
            }
        }
    }
}

impl TrafficSource for UniformRandom {
    fn poll(&mut self, master: usize, now: Cycle) -> Option<Transfer> {
        let st = &mut self.per_master[master];
        if st.next_arrival > now as f64 {
            return None;
        }
        // Exponential inter-arrival (Poisson process).
        let u = st.rng.gen_f64().max(f64::MIN_POSITIVE);
        st.next_arrival += -u.ln() * self.mean_gap;
        let bytes = st.rng.gen_range_inclusive(1, self.cfg.max_transfer);
        let dst = Self::pick_dst(&self.cfg, &mut st.rng, master);
        let max_offset = self.cfg.region_size - bytes;
        let gen_offset = |rng: &mut Rng| {
            if max_offset == 0 {
                0
            } else {
                rng.gen_range(max_offset)
            }
        };
        let offset = gen_offset(&mut st.rng);
        let kind = if self.copies {
            // Random source distinct from the destination.
            let src = loop {
                let idx = st.rng.gen_range(self.cfg.slaves.len() as u64) as usize;
                let s = self.cfg.slaves[idx];
                if s != dst {
                    break s;
                }
            };
            TransferKind::Copy {
                src,
                src_offset: gen_offset(&mut st.rng),
            }
        } else if st.rng.gen_bool(self.cfg.read_fraction) {
            TransferKind::Read
        } else {
            TransferKind::Write
        };
        st.serial += 1;
        Some(Transfer {
            id: (master as u64) << 48 | st.serial,
            dst,
            offset,
            bytes,
            kind,
        })
    }

    fn next_arrival(&self, _now: Cycle) -> Horizon {
        // Each master's Poisson clock is materialized eagerly (poll draws
        // the *next* arrival when one fires), so lookahead is a pure read:
        // the earliest clock over all masters bounds the next injection
        // without touching any random stream.
        self.per_master
            .iter()
            .map(|st| arrival_horizon(st.next_arrival))
            .fold(Horizon::Never, Horizon::min)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new(chkpt::SNAP_KIND, self.shape());
        for st in &self.per_master {
            chkpt::encode_master(&mut e, &st.rng, st.next_arrival, st.serial);
        }
        Some(e.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Ok(mut d) = Decoder::new(
            bytes,
            chkpt::SNAP_KIND,
            self.shape(),
            DecodeLimits::default(),
        ) else {
            return false;
        };
        let mut fresh = Vec::with_capacity(self.per_master.len());
        for _ in &self.per_master {
            let Ok((rng, next_arrival, serial)) = chkpt::decode_master(&mut d) else {
                return false;
            };
            fresh.push(MasterState {
                rng,
                next_arrival,
                serial,
            });
        }
        if d.finish().is_err() {
            return false;
        }
        self.per_master = fresh;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(load: f64, max_transfer: u64) -> UniformConfig {
        UniformConfig {
            masters: 16,
            slaves: (0..16).collect(),
            load,
            bytes_per_cycle: 4.0,
            max_transfer,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed: 7,
        }
    }

    /// Drain all arrivals for `cycles` cycles and return them.
    fn drain(src: &mut UniformRandom, master: usize, cycles: u64) -> Vec<Transfer> {
        let mut out = Vec::new();
        for now in 0..cycles {
            while let Some(t) = src.poll(master, now) {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn copies_have_distinct_random_sources() {
        let mut src = UniformRandom::new_copies(cfg(1.0, 64));
        let transfers = drain(&mut src, 2, 20_000);
        assert!(!transfers.is_empty());
        let mut sources = std::collections::BTreeSet::new();
        for t in &transfers {
            match t.kind {
                TransferKind::Copy { src, src_offset } => {
                    assert_ne!(src, t.dst, "source must differ from destination");
                    assert!(src_offset + t.bytes <= 1 << 24);
                    sources.insert(src);
                }
                other => panic!("expected a copy, got {other:?}"),
            }
        }
        assert!(sources.len() > 8, "sources cover the slaves: {sources:?}");
    }

    #[test]
    #[should_panic(expected = "two distinct slaves")]
    fn copies_require_two_slaves() {
        let mut c = cfg(1.0, 64);
        c.slaves = vec![3];
        let _ = UniformRandom::new_copies(c);
    }

    #[test]
    fn offered_load_matches_request() {
        let mut src = UniformRandom::new(cfg(0.5, 100));
        let cycles = 200_000;
        let transfers = drain(&mut src, 0, cycles);
        let bytes: u64 = transfers.iter().map(|t| t.bytes).sum();
        let offered = bytes as f64 / cycles as f64;
        let expected = 0.5 * 4.0;
        assert!(
            (offered - expected).abs() / expected < 0.05,
            "offered {offered} expected {expected}"
        );
    }

    #[test]
    fn sizes_within_range() {
        let mut src = UniformRandom::new(cfg(1.0, 1000));
        for t in drain(&mut src, 3, 10_000) {
            assert!((1..=1000).contains(&t.bytes));
            assert!(t.offset + t.bytes <= 1 << 24);
        }
    }

    #[test]
    fn destinations_cover_all_other_slaves() {
        let mut src = UniformRandom::new(cfg(1.0, 4));
        let transfers = drain(&mut src, 5, 20_000);
        let mut seen = [false; 16];
        for t in &transfers {
            assert_ne!(t.dst, 5, "self traffic excluded");
            seen[t.dst] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 15);
    }

    #[test]
    fn read_fraction_respected() {
        let mut c = cfg(1.0, 64);
        c.read_fraction = 0.25;
        let mut src = UniformRandom::new(c);
        let transfers = drain(&mut src, 0, 100_000);
        let reads = transfers
            .iter()
            .filter(|t| t.kind == TransferKind::Read)
            .count() as f64;
        let frac = reads / transfers.len() as f64;
        assert!((frac - 0.25).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = UniformRandom::new(cfg(0.3, 500));
        let mut b = UniformRandom::new(cfg(0.3, 500));
        assert_eq!(drain(&mut a, 2, 5000), drain(&mut b, 2, 5000));
    }

    #[test]
    fn masters_are_decorrelated() {
        let mut src = UniformRandom::new(cfg(1.0, 100));
        let a = drain(&mut src, 0, 2000);
        let b = drain(&mut src, 1, 2000);
        assert_ne!(a.first().map(|t| t.bytes), b.first().map(|t| t.bytes));
    }

    #[test]
    fn ids_are_unique_per_master() {
        let mut src = UniformRandom::new(cfg(1.0, 16));
        let transfers = drain(&mut src, 4, 5000);
        let mut ids: Vec<u64> = transfers.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), transfers.len());
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn zero_load_rejected() {
        let _ = UniformRandom::new(cfg(0.0, 100));
    }

    #[test]
    fn next_arrival_bounds_the_first_poll_exactly() {
        // At a sparse load, drain the current arrivals, then check the
        // reported horizon is exactly the first cycle at which any master
        // polls a transfer — no earlier fire, no later slack — and that
        // asking never perturbs the stream.
        let mut src = UniformRandom::new(cfg(0.001, 100));
        let mirror = src.clone();
        for now in 0..5_000u64 {
            for m in 0..16 {
                while src.poll(m, now).is_some() {}
            }
            let h = src.next_arrival(now);
            let Horizon::At(c) = h else {
                panic!("open-loop Poisson source can always produce more")
            };
            assert!(c > now, "post-drain horizon must be in the future");
            // No master fires strictly before the horizon.
            for probe in (now + 1)..c.min(now + 50) {
                for m in 0..16 {
                    assert_eq!(src.poll(m, probe), None, "early fire at {probe}");
                }
            }
            // And at the horizon itself (when nearby), someone does.
            if c <= now + 50 {
                let fired = (0..16).any(|m| src.poll(m, c).is_some());
                assert!(fired, "horizon {c} passed with no arrival");
                break;
            }
        }
        // Purity: a source that was only asked for horizons is untouched.
        for now in 0..100 {
            let _ = mirror.next_arrival(now);
        }
        assert_eq!(
            mirror.snapshot_state(),
            UniformRandom::new(cfg(0.001, 100)).snapshot_state(),
            "lookahead must not advance any stream"
        );
    }

    #[test]
    fn checkpoint_restore_reproduces_the_future_stream() {
        let mut src = UniformRandom::new_copies(cfg(0.7, 200));
        for m in 0..16 {
            let _ = drain(&mut src, m, 500);
        }
        let bytes = src.snapshot_state().expect("uniform sources checkpoint");
        let mut restored = UniformRandom::new_copies(cfg(0.7, 200));
        assert!(restored.restore_state(&bytes));
        for m in 0..16 {
            for now in 500..1500 {
                assert_eq!(src.poll(m, now), restored.poll(m, now));
            }
        }
    }

    #[test]
    fn corrupt_checkpoint_refused_and_state_untouched() {
        let mut src = UniformRandom::new(cfg(0.5, 100));
        let _ = drain(&mut src, 0, 200);
        let mut bytes = src.snapshot_state().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let mut target = UniformRandom::new(cfg(0.5, 100));
        let before = target.snapshot_state().unwrap();
        assert!(!target.restore_state(&bytes));
        assert_eq!(target.snapshot_state().unwrap(), before);
    }

    #[test]
    fn checkpoint_from_a_different_config_refused() {
        let src = UniformRandom::new(cfg(0.5, 100));
        let bytes = src.snapshot_state().unwrap();
        // Different seed, copies flag, and load all change the shape.
        let mut other = UniformRandom::new(UniformConfig {
            seed: 99,
            ..cfg(0.5, 100)
        });
        assert!(!other.restore_state(&bytes));
        let mut copies = UniformRandom::new_copies(cfg(0.5, 100));
        assert!(!copies.restore_state(&bytes));
    }
}
