//! Checkpoint support shared by the traffic sources.
//!
//! All sources serialize with the `simkit::snap` container under one
//! engine-kind discriminant ([`SNAP_KIND`]); the header's *shape* digest
//! carries a per-source type tag plus every configuration field, so bytes
//! from a different source type or a differently configured source are
//! rejected before any state is decoded. The stochastic generators
//! (`uniform`, `synthetic`) share the same per-master state triple — an
//! RNG stream, a fractional next-arrival clock and a transfer serial —
//! encoded by the helpers here.

use simkit::snap::{Decoder, Encoder, SnapError};
use simkit::Rng;

/// Traffic sources' discriminant in the snapshot header (the two NoC
/// engines use 1 and 2).
pub(crate) const SNAP_KIND: u8 = 3;

/// Shorthand for the source-invariant violation error.
pub(crate) fn corrupt(msg: &'static str) -> SnapError {
    SnapError::Corrupt(msg)
}

/// Serializes one master's Poisson state.
pub(crate) fn encode_master(e: &mut Encoder, rng: &Rng, next_arrival: f64, serial: u64) {
    for w in rng.state() {
        e.fixed_u64(w);
    }
    e.f64(next_arrival);
    e.u64(serial);
}

/// Decodes one master's Poisson state, rejecting the RNG's unreachable
/// all-zero state and non-finite arrival clocks (a NaN clock would make
/// the master inject unconditionally forever).
pub(crate) fn decode_master(d: &mut Decoder<'_>) -> Result<(Rng, f64, u64), SnapError> {
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = d.fixed_u64()?;
    }
    let rng = Rng::from_state(s).ok_or(corrupt("degenerate rng state"))?;
    let next_arrival = d.f64()?;
    if !next_arrival.is_finite() || next_arrival < 0.0 {
        return Err(corrupt("arrival clock out of range"));
    }
    let serial = d.u64()?;
    Ok((rng, next_arrival, serial))
}
