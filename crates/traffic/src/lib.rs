//! # traffic — workload generation for NoC evaluation
//!
//! The PATRONoC paper evaluates the NoC with three classes of traffic
//! (§IV), all reproduced by this crate:
//!
//! * [`uniform`] — **uniform random traffic** with Poisson arrivals and
//!   randomized DMA burst lengths (Fig. 4),
//! * [`synthetic`] — the three locality-controlled **synthetic patterns** of
//!   Fig. 5: all-global access, max-two-hop access and max-single-hop access
//!   (Fig. 6),
//! * [`dnn`] — **DNN workload traffic**: transfer traces generated from a
//!   ResNet-34 (90 % channel-shrink) layer graph deployed as distributed
//!   training, layer-parallel convolution, or pipelined (depth-first)
//!   convolution on 16 cores (Fig. 7/8). This substitutes for the paper's
//!   GVSoC full-system traces: the NoC only observes `(source, destination,
//!   size, dependency)` tuples, which we generate from the same workload
//!   structure.
//!
//! All generators implement [`TrafficSource`], the interface both NoC
//! simulators (`patronoc` and the `packetnoc` baseline) pull transfers from.
//!
//! ```
//! use traffic::{UniformConfig, UniformRandom, TrafficSource};
//!
//! let cfg = UniformConfig {
//!     masters: 16,
//!     slaves: (0..16).collect(),
//!     load: 0.5,
//!     bytes_per_cycle: 4.0, // slim NoC: 32-bit data width
//!     max_transfer: 100,
//!     read_fraction: 0.5,
//!     region_size: 1 << 24,
//!     seed: 1,
//! };
//! let mut src = UniformRandom::new(cfg);
//! // The simulator polls each master every cycle:
//! let _maybe_transfer = src.poll(0, 0);
//! ```

#![forbid(unsafe_code)]

pub(crate) mod chkpt;
pub mod dnn;
pub mod source;
pub mod synthetic;
pub mod uniform;

pub use dnn::{DnnTraffic, DnnWorkload};
pub use source::{TrafficSource, Transfer, TransferKind};
pub use synthetic::{SyntheticConfig, SyntheticPattern, SyntheticTraffic};
pub use uniform::{UniformConfig, UniformRandom};
