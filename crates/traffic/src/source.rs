//! The traffic-source interface consumed by the NoC simulators.
//!
//! A [`TrafficSource`] plays the role of the paper's testbench stimulus: it
//! hands DMA *transfer descriptors* to each master endpoint and is notified
//! when they complete, which lets dependency-driven workloads (the DNN
//! traces of Fig. 7) release downstream transfers.

use simkit::{Cycle, Horizon};

/// Whether a transfer reads from, writes to, or copies between remote
/// endpoints.
///
/// Reads and writes exercise independent AXI channels (AR/R vs AW/W/B), so
/// a mixed workload can move up to two data beats per cycle per link. A
/// [`Copy`](Self::Copy) is a memory-to-memory DMA transfer ("a random burst
/// length with a random source and destination address", paper §IV): the
/// engine streams read data from `src` and writes it to the transfer's
/// destination, so the payload crosses the NoC twice but is *counted once*
/// (at the destination), matching the paper's Fig. 4 accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Remote → local: AR request, R data response.
    Read,
    /// Local → remote: AW request, W data, B response.
    Write,
    /// Remote → remote streaming copy.
    Copy {
        /// Source endpoint index.
        src: usize,
        /// Byte offset within the source's address region.
        src_offset: u64,
    },
}

/// One DMA transfer descriptor: "move `bytes` between this master and the
/// memory at endpoint `dst`, starting `offset` bytes into its region".
///
/// The DMA engine splits the transfer into AXI-compliant bursts
/// ([`axi::split::split_transfer`]); the *transfer length itself* is the
/// "DMA burst length" the paper sweeps (e.g. "Burst size < 64000").
///
/// [`axi::split::split_transfer`]: https://docs.rs/axi
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Generator-assigned identifier, echoed in the completion callback.
    pub id: u64,
    /// Destination endpoint (slave) index.
    pub dst: usize,
    /// Byte offset within the destination's address region.
    pub offset: u64,
    /// Transfer length in bytes (must be > 0).
    pub bytes: u64,
    /// Read or write.
    pub kind: TransferKind,
}

/// A pull-based stimulus for the NoC simulators.
///
/// Each simulated cycle, the engine calls [`poll`](Self::poll) repeatedly
/// for every master until it returns `None`, enqueuing the returned
/// transfers on that master's DMA descriptor queue. Completion callbacks
/// arrive when the last response beat of a transfer reaches the master.
pub trait TrafficSource {
    /// Returns the next transfer that master `master` should issue at time
    /// `now`, or `None` if it has nothing (more) to inject this cycle.
    fn poll(&mut self, master: usize, now: Cycle) -> Option<Transfer>;

    /// Notifies the source that transfer `id` issued by `master` completed.
    fn on_complete(&mut self, master: usize, id: u64, now: Cycle) {
        let _ = (master, id, now);
    }

    /// Whether the workload is finite and fully generated *and* all its
    /// completions have been observed (used by trace-driven runs; open-loop
    /// sources stay `false` forever and are stopped by a cycle budget).
    fn is_done(&self) -> bool {
        false
    }

    /// The earliest cycle at which any master can next produce a transfer —
    /// the source's half of the event-horizon time-skipping contract
    /// (`simkit::horizon`). Must be *conservative and pure*: it never
    /// touches the random stream or any other state, and it promises that
    /// every `poll` strictly before the returned cycle returns `None`.
    /// [`Horizon::Never`] additionally promises that only an external
    /// cause (an [`on_complete`](Self::on_complete) callback) can ready
    /// more work. The default, `At(now)`, is the no-lookahead answer: it
    /// is always correct and simply forbids skipping.
    fn next_arrival(&self, now: Cycle) -> Horizon {
        Horizon::At(now)
    }

    /// Serializes the source's complete deterministic state (RNG streams,
    /// arrival clocks, dependency progress) as a self-validating byte
    /// string, or `None` when the source does not support checkpointing —
    /// warm-start forking then falls back to a cold run. Restoring the
    /// bytes into an identically configured source and continuing to poll
    /// reproduces this source's future output exactly.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state)
    /// on a source built from the same configuration. Returns `false` —
    /// leaving `self` untouched — when the source does not support
    /// checkpointing or the bytes are truncated, corrupt, or from a
    /// differently configured source.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }
}

/// The horizon implied by a fractional Poisson arrival clock: the first
/// integer cycle `c` with `c ≥ next_arrival`, i.e. the first cycle at
/// which the stochastic sources' poll guard (`next_arrival > now as f64`)
/// stops returning `None`. Saturates arrival clocks beyond the cycle
/// range to the last representable cycle (an unreachable future).
pub(crate) fn arrival_horizon(next_arrival: f64) -> Horizon {
    // `f64 as u64` saturates at the type bounds; clocks are validated
    // non-negative and finite on restore and can never be negative by
    // construction.
    Horizon::At(next_arrival.ceil() as Cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_horizon_matches_the_poll_guard() {
        // The guard fires at the first integer cycle not before the clock.
        for (clock, cycle) in [(0.0, 0), (0.2, 1), (7.0, 7), (7.001, 8)] {
            assert_eq!(arrival_horizon(clock), Horizon::At(cycle), "clock {clock}");
            // Cross-check against the guard expression itself.
            assert!(clock <= cycle as f64, "guard admits cycle {cycle}");
            if cycle > 0 {
                assert!(
                    clock > (cycle - 1) as f64,
                    "guard blocks cycle {}",
                    cycle - 1
                );
            }
        }
        // Out-of-range clocks saturate to an unreachable future cycle.
        assert_eq!(arrival_horizon(1e300), Horizon::At(u64::MAX));
    }

    /// A trivial one-shot source used to validate the default impls.
    struct OneShot(Option<Transfer>);

    impl TrafficSource for OneShot {
        fn poll(&mut self, _master: usize, _now: Cycle) -> Option<Transfer> {
            self.0.take()
        }
    }

    #[test]
    fn default_impls_are_benign() {
        let t = Transfer {
            id: 1,
            dst: 3,
            offset: 0,
            bytes: 64,
            kind: TransferKind::Write,
        };
        let mut s = OneShot(Some(t));
        assert!(!s.is_done());
        assert_eq!(
            s.next_arrival(42),
            Horizon::At(42),
            "no-lookahead default never permits a skip"
        );
        assert_eq!(s.poll(0, 0), Some(t));
        assert_eq!(s.poll(0, 1), None);
        s.on_complete(0, 1, 10); // must not panic
        assert!(s.snapshot_state().is_none(), "checkpointing opt-in");
        assert!(!s.restore_state(&[1, 2, 3]), "restore refused, no panic");
    }
}
