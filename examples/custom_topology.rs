//! Build NoCs from the same crosspoint on *different topologies* — the
//! modularity §II claims ("any regular topology, such as a torus,
//! butterfly, or ring, can also be modularly built using our building
//! blocks") — and verify the routing is deadlock-free before simulating.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use axi::AxiParams;
use patronoc::routing::validate_deadlock_free;
use patronoc::{NocConfig, NocSim, RoutingAlgorithm, Topology};
use traffic::{UniformConfig, UniformRandom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let axi = AxiParams::new(32, 64, 4, 8)?;
    for topo in [
        Topology::mesh4x4(),
        Topology::Torus { cols: 4, rows: 4 },
        Topology::Ring { nodes: 16 },
        Topology::Mesh { cols: 8, rows: 2 },
    ] {
        // The channel-dependency-graph check the mesh's YX routing passes
        // by construction; rings pass via chain routing.
        validate_deadlock_free(topo, RoutingAlgorithm::YxDimensionOrder)
            .map_err(|cycle| format!("{topo}: dependency cycle {cycle:?}"))?;

        let n = topo.num_nodes();
        let mut sim = NocSim::new(NocConfig::new(axi, topo))?;
        let mut src = UniformRandom::new_copies(UniformConfig {
            masters: n,
            slaves: (0..n).collect(),
            load: 0.8,
            bytes_per_cycle: axi.bytes_per_beat() as f64,
            max_transfer: 2048,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed: 11,
        });
        let report = sim.run(&mut src, 60_000, 10_000);
        println!(
            "{topo:<14} deadlock-free ✓   {:7.2} GiB/s, mean latency {:5.1} cycles",
            report.throughput_gib_s, report.mean_latency
        );
    }
    println!();
    println!("Note: torus wrap links are wired but routed around — shortest-path");
    println!("wrap routing has cyclic channel dependencies that plain AXI channels");
    println!("(no virtual channels) cannot break; validate_deadlock_free() proves");
    println!("the restriction. The ring similarly routes as a chain.");
    Ok(())
}
