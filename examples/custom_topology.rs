//! Build NoCs from the same crosspoint on *different topologies* — the
//! modularity §II claims ("any regular topology, such as a torus,
//! butterfly, or ring, can also be modularly built using our building
//! blocks") — and verify the routing is deadlock-free before simulating.
//! The `Scenario` builder derives master/slave counts from each topology,
//! so the loop body never mentions node counts.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```
//!
//! `EXAMPLE_QUICK=1` shrinks the window for smoke runs (CI).

use patronoc::routing::validate_deadlock_free;
use patronoc::{RoutingAlgorithm, Topology};
use scenario::{Scenario, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window: u64 = if std::env::var_os("EXAMPLE_QUICK").is_some() {
        8_000
    } else {
        50_000
    };
    for topo in [
        Topology::mesh4x4(),
        Topology::Torus { cols: 4, rows: 4 },
        Topology::Ring { nodes: 16 },
        Topology::Mesh { cols: 8, rows: 2 },
    ] {
        // The channel-dependency-graph check the mesh's YX routing passes
        // by construction; rings pass via chain routing.
        validate_deadlock_free(topo, RoutingAlgorithm::YxDimensionOrder)
            .map_err(|cycle| format!("{topo}: dependency cycle {cycle:?}"))?;

        let report = Scenario::patronoc()
            .topology(topo)
            .data_width(64)
            .traffic(TrafficSpec::uniform_copies(0.8, 2048))
            .warmup(10_000)
            .window(window)
            .seed(11)
            .run()?;
        println!(
            "{topo:<14} deadlock-free ✓   {:7.2} GiB/s, mean latency {:5.1} cycles",
            report.throughput_gib_s, report.mean_latency
        );
    }
    println!();
    println!("Note: torus wrap links are wired but routed around — shortest-path");
    println!("wrap routing has cyclic channel dependencies that plain AXI channels");
    println!("(no virtual channels) cannot break; validate_deadlock_free() proves");
    println!("the restriction. The ring similarly routes as a chain.");
    Ok(())
}
