//! Deploy a depth-first (pipelined) CNN across the 16 cores of a wide
//! PATRONoC mesh — the workload the paper's abstract headlines with
//! "up to 310 GiB/s aggregated throughput" — and compare it against the
//! layer-parallel schedule of the same network.
//!
//! ```sh
//! cargo run --release --example dnn_pipeline
//! ```

use patronoc::{NocConfig, NocSim};
use traffic::dnn::DnnConfig;
use traffic::{DnnTraffic, DnnWorkload};

fn run(workload: DnnWorkload) -> Result<(), Box<dyn std::error::Error>> {
    // The paper's wide NoC: AXI_32_512_4, MOT = 8 on the 4×4 mesh.
    let mut sim = NocSim::new(NocConfig::wide_4x4())?;

    // Generate the transfer trace from a ResNet-34 layer graph: the
    // pipelined schedule partitions the network across cores 0..15 and
    // streams image tiles core-to-core; the parallel schedule tiles every
    // layer across all cores through the shared L2.
    let cfg = DnnConfig {
        steps: 2, // images
        ..DnnConfig::for_workload(workload)
    };
    let mut trace = DnnTraffic::new(&cfg);
    println!(
        "{:>9}: {} transfers, {:.1} MiB total, {:.0} % core-to-core",
        workload.name(),
        trace.len(),
        trace.total_bytes() as f64 / (1 << 20) as f64,
        100.0 * trace.core_to_core_fraction(cfg.l2_node),
    );

    let report = sim.run(&mut trace, 100_000_000, 0);
    println!(
        "{:>9}: {:.1} GiB/s aggregate over {} cycles ({} transfers)",
        workload.name(),
        report.throughput_gib_s,
        report.cycles,
        report.transfers_completed
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for workload in [DnnWorkload::PipelinedConv, DnnWorkload::ParallelConv] {
        run(workload)?;
    }
    println!();
    println!("The pipelined schedule keeps the traffic on short core-to-core paths");
    println!("and spreads it over many links; the layer-parallel schedule funnels");
    println!("everything through one shared-L2 endpoint — which is why the paper");
    println!("argues burst-capable, high-bandwidth NoCs matter for multi-core DNN");
    println!("platforms.");
    Ok(())
}
