//! Deploy a depth-first (pipelined) CNN across the 16 cores of a wide
//! PATRONoC mesh — the workload the paper's abstract headlines with
//! "up to 310 GiB/s aggregated throughput" — and compare it against the
//! layer-parallel schedule of the same network. Each deployment is one
//! budgeted `Scenario`; a trace that misses the budget is reported via
//! its `StopReason`, never a panic.
//!
//! ```sh
//! cargo run --release --example dnn_pipeline
//! ```
//!
//! `EXAMPLE_QUICK=1` runs single-image traces for smoke runs (CI).

use scenario::{Scenario, TrafficSpec};
use traffic::dnn::DnnConfig;
use traffic::DnnWorkload;

fn run(workload: DnnWorkload, steps: usize) -> Result<(), Box<dyn std::error::Error>> {
    // The paper's wide NoC (AXI_32_512_4, MOT = 8 on the 4×4 mesh) running
    // the trace to drain under a generous cycle budget.
    let deployment = Scenario::patronoc()
        .data_width(512)
        .traffic(TrafficSpec::dnn(workload, steps))
        .budget(100_000_000)
        .seed(1);

    // Trace-level statistics come from the concrete trace the scenario
    // names: the pipelined schedule partitions the network across cores
    // 0..15 and streams image tiles core-to-core; the parallel schedule
    // tiles every layer across all cores through the shared L2.
    let trace = deployment.build_dnn_trace().expect("a DNN scenario");
    let l2_node = DnnConfig::for_workload(workload).l2_node;
    println!(
        "{:>9}: {} transfers, {:.1} MiB total, {:.0} % core-to-core",
        workload.name(),
        trace.len(),
        trace.total_bytes() as f64 / (1 << 20) as f64,
        100.0 * trace.core_to_core_fraction(l2_node),
    );

    let report = deployment.run()?;
    let note = if report.is_drained() {
        ""
    } else {
        "  [INCOMPLETE: budget exceeded]"
    };
    println!(
        "{:>9}: {:.1} GiB/s aggregate over {} cycles ({} transfers){note}",
        workload.name(),
        report.throughput_gib_s,
        report.cycles,
        report.transfers_completed
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps = if std::env::var_os("EXAMPLE_QUICK").is_some() {
        1
    } else {
        2
    };
    for workload in [DnnWorkload::PipelinedConv, DnnWorkload::ParallelConv] {
        run(workload, steps)?;
    }
    println!();
    println!("The pipelined schedule keeps the traffic on short core-to-core paths");
    println!("and spreads it over many links; the layer-parallel schedule funnels");
    println!("everything through one shared-L2 endpoint — which is why the paper");
    println!("argues burst-capable, high-bandwidth NoCs matter for multi-core DNN");
    println!("platforms.");
    Ok(())
}
