//! Quickstart: describe the paper's slim 4×4 PATRONoC under uniform
//! random DMA traffic as one `Scenario` value, run it, and print
//! throughput and latency.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! `EXAMPLE_QUICK=1` shrinks the window for smoke runs (CI).

use scenario::{Scenario, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window: u64 = if std::env::var_os("EXAMPLE_QUICK").is_some() {
        8_000
    } else {
        80_000
    };

    // One value names the whole run: the slim 4×4 mesh (Table I's
    // AXI_32_32_4, MOT = 8 — the builder's defaults), Poisson uniform
    // random memory-to-memory copies with DMA bursts up to 1 KiB at 60 %
    // injected load, measured for `window` cycles after a 20k-cycle
    // warm-up. Masters and slaves derive from the topology.
    let report = Scenario::patronoc()
        .traffic(TrafficSpec::uniform_copies(0.6, 1024))
        .warmup(20_000)
        .window(window)
        .seed(42)
        .run()?;

    println!(
        "simulated {} cycles ({:?})",
        report.cycles, report.stop_reason
    );
    println!("transfers completed: {}", report.transfers_completed);
    println!("aggregate throughput: {:.2} GiB/s", report.throughput_gib_s);
    println!(
        "transfer latency: mean {:.0} cycles, p99 ≤ {} cycles",
        report.mean_latency, report.p99_latency
    );
    Ok(())
}
