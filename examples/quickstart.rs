//! Quickstart: build the paper's slim 4×4 PATRONoC mesh, drive it with
//! uniform random DMA traffic, and print throughput and latency.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use axi::AxiParams;
use patronoc::{NocConfig, NocSim, Topology};
use traffic::{UniformConfig, UniformRandom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick the AXI interface parameters (Table I): AW=32, DW=32, IW=4,
    //    MOT=8 — the paper's "slim NoC".
    let axi = AxiParams::new(32, 32, 4, 8)?;

    // 2. Instantiate the NoC: a 4×4 mesh with a DMA master and a memory
    //    slave at every crosspoint, YX routing, register slices everywhere.
    let cfg = NocConfig::new(axi, Topology::mesh4x4());
    let mut sim = NocSim::new(cfg)?;

    // 3. Describe the workload: Poisson uniform random memory-to-memory
    //    copies with DMA burst lengths up to 1 KiB at 60 % injected load.
    let mut workload = UniformRandom::new_copies(UniformConfig {
        masters: 16,
        slaves: (0..16).collect(),
        load: 0.6,
        bytes_per_cycle: axi.bytes_per_beat() as f64,
        max_transfer: 1024,
        read_fraction: 0.5,
        region_size: 1 << 24,
        seed: 42,
    });

    // 4. Simulate 100k cycles (= 100 µs at the 1 GHz evaluation clock),
    //    measuring after a 20k-cycle warm-up.
    let report = sim.run(&mut workload, 100_000, 20_000);

    println!("simulated {} cycles", report.cycles);
    println!("transfers completed: {}", report.transfers_completed);
    println!("aggregate throughput: {:.2} GiB/s", report.throughput_gib_s);
    println!(
        "transfer latency: mean {:.0} cycles, p99 ≤ {} cycles",
        report.mean_latency, report.p99_latency
    );
    Ok(())
}
