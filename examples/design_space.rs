//! Design-space exploration: sweep the data width (Table I's DW parameter)
//! and report area (kGE), power (mW), bisection bandwidth and *measured*
//! saturation throughput for each point — the kind of exploration §VI says
//! the framework is meant to enable.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use axi::AxiParams;
use patronoc::{NocConfig, NocSim, Topology};
use physical::{bisection::bisection_bandwidth_gib_s, power_mw, AreaModel, BisectionCounting};
use traffic::{UniformConfig, UniformRandom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = AreaModel::calibrated();
    let topo = Topology::mesh4x4();
    println!(
        "{:>6} {:>12} {:>10} {:>18} {:>18}",
        "DW", "area (kGE)", "power(mW)", "bisection (GiB/s)", "measured (GiB/s)"
    );
    for dw in [32u32, 64, 128, 256, 512] {
        let axi = AxiParams::new(32, dw, 4, 8)?;
        let area = model.mesh_area_kge(topo, axi);
        let power = power_mw(topo, axi);
        let bisection = bisection_bandwidth_gib_s(topo, dw, BisectionCounting::BothWays);

        // Measure saturation under uniform random copies, bursts ≤ 4 KiB.
        let mut sim = NocSim::new(NocConfig::new(axi, topo))?;
        let mut src = UniformRandom::new_copies(UniformConfig {
            masters: 16,
            slaves: (0..16).collect(),
            load: 1.0,
            bytes_per_cycle: f64::from(dw) / 8.0,
            max_transfer: 4096,
            read_fraction: 0.5,
            region_size: 1 << 24,
            seed: 7,
        });
        let report = sim.run(&mut src, 80_000, 20_000);
        println!(
            "{:>6} {:>12.0} {:>10.1} {:>18.1} {:>18.2}",
            dw, area, power, bisection, report.throughput_gib_s
        );
    }
    println!();
    println!("Wider links buy bandwidth almost linearly in area — the area-efficiency");
    println!("argument of Fig. 2 — but only burst-based traffic can use them (Fig. 4).");
    Ok(())
}
