//! Design-space exploration: sweep the data width (Table I's DW parameter)
//! and report area (kGE), power (mW), bisection bandwidth and *measured*
//! saturation throughput for each point — the kind of exploration §VI says
//! the framework is meant to enable. Each point is one `Scenario` value;
//! the physical models read the same AXI parameters the simulator runs.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```
//!
//! `EXAMPLE_QUICK=1` shrinks the window for smoke runs (CI).

use axi::AxiParams;
use physical::{bisection::bisection_bandwidth_gib_s, power_mw, AreaModel, BisectionCounting};
use scenario::{Scenario, TrafficSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window: u64 = if std::env::var_os("EXAMPLE_QUICK").is_some() {
        8_000
    } else {
        60_000
    };
    let model = AreaModel::calibrated();
    println!(
        "{:>6} {:>12} {:>10} {:>18} {:>18}",
        "DW", "area (kGE)", "power(mW)", "bisection (GiB/s)", "measured (GiB/s)"
    );
    for dw in [32u32, 64, 128, 256, 512] {
        // Saturation under uniform random copies, bursts ≤ 4 KiB.
        let point = Scenario::patronoc()
            .data_width(dw)
            .traffic(TrafficSpec::uniform_copies(1.0, 4096))
            .warmup(20_000)
            .window(window)
            .seed(7);
        let axi = AxiParams::new(point.addr_width, dw, point.id_width, point.max_outstanding)?;
        let area = model.mesh_area_kge(point.topology, axi);
        let power = power_mw(point.topology, axi);
        let bisection = bisection_bandwidth_gib_s(point.topology, dw, BisectionCounting::BothWays);
        let report = point.run()?;
        println!(
            "{:>6} {:>12.0} {:>10.1} {:>18.1} {:>18.2}",
            dw, area, power, bisection, report.throughput_gib_s
        );
    }
    println!();
    println!("Wider links buy bandwidth almost linearly in area — the area-efficiency");
    println!("argument of Fig. 2 — but only burst-based traffic can use them (Fig. 4).");
    Ok(())
}
